"""Host channel adapter and queue pairs (reliable connection service).

This models the Mellanox InfiniHost MT23108 at the level the paper's
analysis needs:

* per-QP in-order WQE execution — the send engine launches the next
  descriptor only after the previous message's data has drained, which
  bounds small-message throughput by per-descriptor costs (the Fig. 15
  write curve's ramp);
* RDMA reads are fully serialized per QP through the *responder's*
  read engine with a substantial turnaround (``hca_read_response``) —
  the InfiniHost read path pipelines poorly, which is exactly the raw
  read-vs-write gap of Fig. 15 that makes the CH3 write-based design
  beat the RDMA-read zero-copy design for mid-size messages (§6);
* DMA crosses the PCI-X bus (a fluid resource capping end-to-end peak
  at ~880 MB/s) and the host memory bus (shared with CPU copies);
* data are *really moved*: gather at launch, scatter at delivery, with
  rkey/bounds/access validation at the responder;
* under fault injection (see :mod:`repro.faults`) the RC transport's
  recovery machinery is modelled explicitly: per-QP packet sequence
  numbers, ack/timeout retransmission with exponential backoff,
  CRC-checked delivery, duplicate suppression at the responder, and a
  bounded retry count after which the QP enters the error state and
  completes the WQE with ``WcStatus.RETRY_EXC_ERR`` (subsequently
  queued WQEs flush with ``WR_FLUSH_ERR``).  The recovery path is a
  *stop-and-wait* per WQE — a deliberate simplification of IB's
  go-back-N that preserves the observable semantics (in-order
  delivery, no duplication, bounded retry) at far fewer events.  With
  no link faults configured the legacy single-shot path below runs
  unchanged, so the no-fault event sequence — and therefore every
  benchmark figure — is bit-for-bit identical.

Simulation shortcut (semantics-preserving): instead of spin-polling
loops generating millions of events, inbound placements open the HCA's
``inbound_gate`` so pollers can sleep; observers still pay the
``poll_detect_latency``/``cq_poll_cpu`` costs a real spin loop would,
and they can only act on what the placed bytes/flags say.
"""

from __future__ import annotations

import itertools
import struct
import zlib
from typing import (Any, Callable, Dict, Generator, List, Optional,
                    Tuple)

import numpy as np
import numpy.typing as npt

from ..config import HardwareConfig
from ..hw.membus import MemBus
from ..hw.memory import NodeMemory
from ..obs import NULL_OBS
from ..sim.engine import Event, Simulator
from ..sim.fluid import FluidNetwork, FluidResource
from ..sim.sync import Fifo, Gate, Resource, Store
from .cq import CompletionQueue
from .fabric import Fabric
from .mr import MemoryRegion, ProtectionDomain
from .srq import SharedReceiveQueue
from .types import (Access, AccessError, Completion, IBError, Opcode,
                    QPError, RecvRequest, RnrError, Sge, WcStatus,
                    WorkRequest)

__all__ = ["Hca", "QueuePair", "HcaStats", "SharedReceiveQueue"]

_qpn_counter = itertools.count(0x40)

#: sentinel distinguishing "timer fired" from any ack value
_TIMED_OUT = object()


class HcaStats:
    """Operation counters for one HCA."""

    def __init__(self) -> None:
        self.rdma_writes = 0
        self.rdma_reads = 0
        self.sends = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self.bytes_sent = 0
        self.registrations = 0
        self.deregistrations = 0
        self.atomics = 0
        #: QPs created on this HCA over its lifetime — with connections
        #: never torn down mid-run, also the live-QP count the
        #: memory-footprint gate tracks.
        self.qps_created = 0
        self.srqs_created = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)


class QueuePair:
    """An RC queue pair: a send queue and a receive queue."""

    def __init__(self, hca: "Hca", send_cq: CompletionQueue,
                 recv_cq: CompletionQueue, max_send: int = 4096,
                 max_recv: int = 4096,
                 srq: Optional[SharedReceiveQueue] = None) -> None:
        if srq is not None and srq.hca is not hca:
            raise QPError("SRQ belongs to a different HCA")
        self.hca = hca
        self.qpn = next(_qpn_counter)
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.max_send = max_send
        self.max_recv = max_recv
        #: shared receive queue; when set, inbound SENDs consume WQEs
        #: from the pool instead of this QP's private receive queue.
        self.srq = srq
        self.remote: Optional["QueuePair"] = None
        self.error: bool = False
        self._sq: Store = Store(hca.sim, capacity=max_send)
        self._rq: Fifo = Fifo()
        self._engine = None  # lazily started send-engine process
        self.outstanding_send_wqes = 0
        # -- per-QP observability (no-ops unless the cluster carries
        # an enabled registry; never yields into the simulator) -------
        m = hca.mscope.scope(f"qp{self.qpn}")
        self._m_send_ops = m.counter("send_ops")
        self._m_send_bytes = m.counter("send_bytes")
        self._m_recv_ops = m.counter("recv_ops")
        self._m_recv_bytes = m.counter("recv_bytes")
        self._m_write_ops = m.counter("rdma_write_ops")
        self._m_write_bytes = m.counter("rdma_write_bytes")
        self._m_read_ops = m.counter("rdma_read_ops")
        self._m_read_bytes = m.counter("rdma_read_bytes")
        self._m_atomic_ops = m.counter("atomic_ops")
        self._m_retrans = m.counter("retransmissions")
        self._m_flushes = m.counter("flushes")
        # -- RC recovery state (used only under fault injection) -------
        #: next packet sequence number this QP assigns to a WQE.
        self.psn = 0
        #: next PSN expected from the peer (stop-and-wait: anything
        #: below is a retransmit duplicate).
        self.expected_psn = 0
        #: responder cache of the last delivery's (psn, response) so a
        #: duplicate retransmit re-acks the original outcome without
        #: re-executing (essential for atomics: exactly-once RMW).
        self._resp_cache: Optional[Tuple[int, Any]] = None

    # -- wiring -----------------------------------------------------------
    def connect(self, remote: "QueuePair") -> None:
        """Transition both QPs to RTS against each other (the
        out-of-band QPN exchange the paper does at init time)."""
        if self.remote is not None or remote.remote is not None:
            raise QPError("QP already connected")
        if remote.hca is self.hca and remote is self:
            raise QPError("cannot connect a QP to itself")
        self.remote = remote
        remote.remote = self
        self._start_engine()
        remote._start_engine()

    def _start_engine(self) -> None:
        if self._engine is None:
            self._engine = self.hca.sim.spawn(
                self._send_engine(), name=f"qp{self.qpn}.send_engine",
                daemon=True,
            )

    # -- posting ------------------------------------------------------------
    def post_send(self, wr: WorkRequest) -> None:
        """Enqueue a send-queue descriptor (CPU cost is charged by the
        verbs layer)."""
        if self.remote is None:
            raise QPError(f"QP {self.qpn} not connected")
        if self.error:
            raise QPError(f"QP {self.qpn} in error state")
        if self.outstanding_send_wqes >= self.max_send:
            raise QPError(f"QP {self.qpn} send queue full")
        self.outstanding_send_wqes += 1
        ok = self._sq.try_put(wr)
        assert ok, "store capacity must match max_send"

    def post_recv(self, rr: RecvRequest) -> None:
        if self.srq is not None:
            raise QPError(
                f"QP {self.qpn} is attached to an SRQ; post receive "
                f"WQEs to the shared pool instead")
        if len(self._rq) >= self.max_recv:
            raise QPError(f"QP {self.qpn} receive queue full")
        # Validate lkeys eagerly (real HCAs check on placement; eager
        # checking surfaces protocol bugs at the post site).
        for sge in rr.sges:
            self.hca.pd.lookup_lkey(sge.lkey).check_local(sge.addr,
                                                          sge.length)
        self._rq.append(rr)

    # -- send engine ---------------------------------------------------------
    def _send_engine(self) -> Generator:
        sim = self.hca.sim
        cfg = self.hca.cfg
        faults = self.hca.faults
        while True:
            wr: WorkRequest = yield self._sq.get()
            if self.error:
                # QP in error state: flush queued descriptors without
                # executing them (IB semantics after a fatal error).
                self._m_flushes.inc()
                self._complete(wr, WcStatus.WR_FLUSH_ERR, 0)
                self.outstanding_send_wqes -= 1
                continue
            yield sim.timeout(cfg.hca_send_processing)
            try:
                if faults.take_wc_error(self.hca.node_id):
                    # injected local completion error: the HCA gives up
                    # on this WQE and the QP transitions to error.
                    self.error = True
                    self._complete(wr, WcStatus.RETRY_EXC_ERR, 0)
                elif wr.opcode in (Opcode.RDMA_WRITE, Opcode.SEND):
                    if faults.transport_active:
                        yield from self._execute_write_or_send_rc(wr)
                    else:
                        yield from self._execute_write_or_send(wr)
                elif wr.opcode is Opcode.RDMA_READ:
                    if faults.transport_active:
                        yield from self._execute_read_rc(wr)
                    else:
                        yield from self._execute_read(wr)
                elif wr.opcode in (Opcode.FETCH_ADD, Opcode.CMP_SWAP):
                    if faults.transport_active:
                        yield from self._execute_atomic_rc(wr)
                    else:
                        yield from self._execute_atomic(wr)
                else:  # pragma: no cover - defensive
                    raise IBError(f"bad opcode {wr.opcode}")
            except AccessError:
                self._complete(wr, WcStatus.REM_ACCESS_ERR, 0)
            except RnrError:
                self._complete(wr, WcStatus.RNR_RETRY_EXC_ERR, 0)
            self.outstanding_send_wqes -= 1

    def _gather(self, wr: WorkRequest) -> npt.NDArray[np.uint8]:
        """Snapshot the local SGEs into one contiguous array.

        A single copy is required (not full zero-copy): senders reuse
        staging buffers as soon as the descriptor is queued, so the
        payload must be captured at gather time.  Returning an ndarray
        instead of ``bytes`` makes every downstream scatter a slice
        assignment with no further conversions.
        """
        views = []
        for sge in wr.sges:
            mr = self.hca.pd.lookup_lkey(sge.lkey)
            mr.check_local(sge.addr, sge.length)
            views.append(self.hca.mem.view(sge.addr, sge.length))
        if not views:
            return np.empty(0, dtype=np.uint8)
        if len(views) == 1:
            return views[0].copy()
        return np.concatenate(views)

    def _execute_write_or_send(self, wr: WorkRequest) -> Generator:
        sim, cfg = self.hca.sim, self.hca.cfg
        remote = self.remote
        assert remote is not None
        nbytes = wr.total_length
        payload = self._gather(wr)

        if wr.opcode is Opcode.RDMA_WRITE:
            # Validate the remote target *before* moving data, like the
            # responder would on the first packet.
            shadow = remote.hca.shadow
            if shadow is not None:
                shadow.on_remote_access(remote.hca, wr.rkey,
                                        wr.remote_addr, nbytes, "write")
            rmr = remote.hca.pd.lookup_rkey(wr.rkey)
            rmr.check_remote(wr.remote_addr, nbytes, Access.REMOTE_WRITE)
            self.hca.stats.rdma_writes += 1
            self.hca.stats.bytes_written += nbytes
            self._m_write_ops.inc()
            self._m_write_bytes.inc(nbytes)
        else:
            self.hca.stats.sends += 1
            self.hca.stats.bytes_sent += nbytes
            self._m_send_ops.inc()
            self._m_send_bytes.inc(nbytes)

        # DMA setup + data drain (serializes this QP's next WQE: RC
        # ordering on the wire).
        t0 = sim.now
        yield sim.timeout(cfg.pci_latency)
        if nbytes:
            route = self.hca.dma_route_to(remote.hca)
            yield self.hca.net.transfer(nbytes, route,
                                        label=f"qp{self.qpn}.{wr.opcode.value}")
        self.hca.timeline.span(
            f"node{self.hca.node_id}.hca", wr.opcode.value, t0, sim.now,
            cat="rdma", args={"bytes": nbytes, "qp": self.qpn})
        # Remote landing: propagation + PCI + placement happen after the
        # drain and overlap the next WQE.
        sim.spawn(self._deliver(wr, payload, remote),
                  name=f"qp{self.qpn}.deliver")

    def _deliver(self, wr: WorkRequest, payload: npt.NDArray[np.uint8],
                 remote: "QueuePair") -> Generator:
        sim, cfg = self.hca.sim, self.hca.cfg
        yield sim.timeout(self.hca.fabric.latency(self.hca.node_id,
                                                  remote.hca.node_id))
        yield sim.timeout(cfg.pci_latency + cfg.hca_recv_processing)
        nbytes = len(payload)
        shadow = remote.hca.shadow
        if wr.opcode is Opcode.RDMA_WRITE:
            if nbytes:
                if shadow is not None:
                    shadow.on_rdma_write(remote.hca, wr.remote_addr,
                                         nbytes, self.qpn)
                remote.hca.mem.write(wr.remote_addr, payload)
                watch = remote.hca._placement_watch.get(wr.remote_addr)
                if watch is not None:
                    watch()
            # transparent to remote software; still pulse the gate so
            # simulated pollers can re-check their flags.
            remote.hca.inbound_gate.open()
        else:  # SEND consumes a receive WQE
            if remote.srq is not None:
                # Pool dry = RNR backpressure: block FIFO until the
                # consumer replenishes (delaying this requester's
                # completion like an RNR retry loop would).
                rr = yield from remote.srq.consume()
            else:
                if not remote._rq:
                    remote.error = True
                    self._complete(wr, WcStatus.RNR_RETRY_EXC_ERR, 0)
                    return
                rr = remote._rq.popleft()
            if rr.total_length < nbytes:
                remote.error = True
                self._complete(wr, WcStatus.LOC_LEN_ERR, 0)
                return
            off = 0
            for sge in rr.sges:
                take = min(sge.length, nbytes - off)
                if take <= 0:
                    break
                if shadow is not None:
                    shadow.on_rdma_write(remote.hca, sge.addr, take,
                                         self.qpn, op="send")
                remote.hca.mem.write(sge.addr, payload[off:off + take])
                off += take
            remote._m_recv_ops.inc()
            remote._m_recv_bytes.inc(nbytes)
            remote.recv_cq.push(Completion(
                wr_id=rr.wr_id, status=WcStatus.SUCCESS,
                opcode=Opcode.RECV, byte_len=nbytes, qp_num=remote.qpn))
            remote.hca.inbound_gate.open()
        # RC ack back to the requester.
        yield sim.timeout(self.hca.fabric.latency(remote.hca.node_id,
                                                  self.hca.node_id))
        self._complete(wr, WcStatus.SUCCESS, nbytes)

    def _execute_read(self, wr: WorkRequest) -> Generator:
        """RDMA read: request leg, responder turnaround, data leg.

        Fully serialized per QP (the engine does not start the next
        WQE until the data lands) — the InfiniHost behaviour behind
        Fig. 15's read curve.
        """
        sim, cfg = self.hca.sim, self.hca.cfg
        remote = self.remote
        assert remote is not None
        nbytes = wr.total_length
        t0 = sim.now
        # local scatter target validation
        for sge in wr.sges:
            self.hca.pd.lookup_lkey(sge.lkey).check_local(sge.addr,
                                                          sge.length)
        # request leg
        yield sim.timeout(self.hca.fabric.latency(self.hca.node_id,
                                                  remote.hca.node_id))
        # responder: validate, then serialize through the read engine
        shadow = remote.hca.shadow
        if shadow is not None:
            shadow.on_remote_access(remote.hca, wr.rkey,
                                    wr.remote_addr, nbytes, "read")
        rmr = remote.hca.pd.lookup_rkey(wr.rkey)
        rmr.check_remote(wr.remote_addr, nbytes, Access.REMOTE_READ)
        yield remote.hca.read_engine.acquire()
        try:
            yield sim.timeout(cfg.hca_read_response)
            payload = remote.hca.mem.view(wr.remote_addr, nbytes).copy()
            yield sim.timeout(cfg.pci_latency)
            if nbytes:
                route = remote.hca.dma_route_to(self.hca)
                yield self.hca.net.transfer(nbytes, route,
                                            label=f"qp{self.qpn}.read")
        finally:
            remote.hca.read_engine.release()
        # landing at the requester
        yield sim.timeout(self.hca.fabric.latency(remote.hca.node_id,
                                                  self.hca.node_id))
        yield sim.timeout(cfg.pci_latency + cfg.hca_recv_processing)
        if nbytes:
            off = 0
            local_shadow = self.hca.shadow
            for sge in wr.sges:
                if local_shadow is not None:
                    local_shadow.on_rdma_write(self.hca, sge.addr,
                                               sge.length, self.qpn,
                                               op="read-landing")
                self.hca.mem.write(sge.addr, payload[off:off + sge.length])
                off += sge.length
        self.hca.stats.rdma_reads += 1
        self.hca.stats.bytes_read += nbytes
        self._m_read_ops.inc()
        self._m_read_bytes.inc(nbytes)
        self.hca.timeline.span(
            f"node{self.hca.node_id}.hca", "rdma_read", t0, sim.now,
            cat="rdma", args={"bytes": nbytes, "qp": self.qpn})
        self.hca.inbound_gate.open()
        self._complete(wr, WcStatus.SUCCESS, nbytes)

    def _execute_atomic(self, wr: WorkRequest) -> Generator:
        """IB atomics: an 8-byte remote read-modify-write, serialized
        through the responder's atomic unit (shared with the read
        engine on the InfiniHost), returning the old value into the
        requester's single SGE.  Timing matches a small RDMA read —
        a full round trip plus responder turnaround."""
        import struct as _struct
        sim, cfg = self.hca.sim, self.hca.cfg
        remote = self.remote
        assert remote is not None
        if len(wr.sges) != 1 or wr.sges[0].length != 8:
            raise IBError("atomics need exactly one 8-byte local SGE")
        sge = wr.sges[0]
        self.hca.pd.lookup_lkey(sge.lkey).check_local(sge.addr, 8)
        # request leg
        yield sim.timeout(self.hca.fabric.latency(self.hca.node_id,
                                                  remote.hca.node_id))
        shadow = remote.hca.shadow
        if shadow is not None:
            shadow.on_remote_access(remote.hca, wr.rkey,
                                    wr.remote_addr, 8, "atomic")
        rmr = remote.hca.pd.lookup_rkey(wr.rkey)
        rmr.check_remote(wr.remote_addr, 8, Access.REMOTE_ATOMIC)
        if wr.remote_addr % 8:
            raise AccessError("atomic target must be 8-byte aligned")
        yield remote.hca.read_engine.acquire()
        try:
            yield sim.timeout(cfg.hca_read_response)
            old_raw = remote.hca.mem.read(wr.remote_addr, 8)
            old = _struct.unpack("<Q", old_raw)[0]
            if wr.opcode is Opcode.FETCH_ADD:
                new = (old + wr.compare_add) & 0xFFFFFFFFFFFFFFFF
                if shadow is not None:
                    shadow.on_rdma_write(remote.hca, wr.remote_addr, 8,
                                         self.qpn, op="atomic")
                remote.hca.mem.write(wr.remote_addr,
                                     _struct.pack("<Q", new))
            else:  # CMP_SWAP
                if old == wr.compare_add:
                    if shadow is not None:
                        shadow.on_rdma_write(remote.hca, wr.remote_addr,
                                             8, self.qpn, op="atomic")
                    remote.hca.mem.write(wr.remote_addr,
                                         _struct.pack("<Q", wr.swap))
            remote.hca.inbound_gate.open()
        finally:
            remote.hca.read_engine.release()
        # response leg carrying the old value
        yield sim.timeout(self.hca.fabric.latency(remote.hca.node_id,
                                                  self.hca.node_id))
        yield sim.timeout(cfg.pci_latency + cfg.hca_recv_processing)
        local_shadow = self.hca.shadow
        if local_shadow is not None:
            local_shadow.on_rdma_write(self.hca, sge.addr, 8, self.qpn,
                                       op="atomic-landing")
        self.hca.mem.write(sge.addr, old_raw)
        self.hca.stats.atomics += 1
        self._m_atomic_ops.inc()
        self.hca.inbound_gate.open()
        self._complete(wr, WcStatus.SUCCESS, 8)

    # -- RC recovery path (fault injection only) ---------------------------
    #
    # Stop-and-wait per WQE: one PSN, transmit, wait for the ack with
    # an exponentially backed-off timeout, retransmit up to
    # ``rc_retry_cnt`` times, then error the QP.  The responder keeps
    # ``expected_psn`` plus a one-entry response cache so duplicate
    # retransmits (lost acks, spurious timeouts) are suppressed and
    # re-acked with the original outcome — writes/sends place bytes at
    # most once, atomics execute their RMW exactly once.

    def _retry_timeout(self, attempt: int, nbytes: int) -> float:
        cfg = self.hca.cfg
        return (cfg.rc_timeout * cfg.rc_retry_backoff ** attempt
                + nbytes * cfg.rc_timeout_per_byte)

    def _await_response(self, resp: Event, timeout: float) -> Generator:
        """Wait for ``resp`` or a timeout; returns the response value,
        or ``_TIMED_OUT``."""
        sim = self.hca.sim
        timer = sim.event()
        handle = sim.call_in(timeout, timer.succeed)
        fired = yield sim.any_of([resp, timer])
        if fired is resp:
            handle.cancel()
            return resp._value
        self.hca.faults.stats.timeouts += 1
        return _TIMED_OUT

    def _enter_error(self, wr: WorkRequest) -> None:
        """Transport retry count exceeded: error the QP and surface an
        error CQE (never a hang) for the consumer to observe."""
        self.error = True
        self.hca.faults.stats.retry_exhaustions += 1
        self._complete(wr, WcStatus.RETRY_EXC_ERR, 0)

    def _execute_write_or_send_rc(self, wr: WorkRequest) -> Generator:
        sim, cfg = self.hca.sim, self.hca.cfg
        faults = self.hca.faults
        remote = self.remote
        assert remote is not None
        nbytes = wr.total_length
        # the recovery path CRCs and fault-corrupts the payload, both
        # of which operate on immutable bytes
        payload = self._gather(wr).tobytes()

        if wr.opcode is Opcode.RDMA_WRITE:
            shadow = remote.hca.shadow
            if shadow is not None:
                shadow.on_remote_access(remote.hca, wr.rkey,
                                        wr.remote_addr, nbytes, "write")
            rmr = remote.hca.pd.lookup_rkey(wr.rkey)
            rmr.check_remote(wr.remote_addr, nbytes, Access.REMOTE_WRITE)
            self.hca.stats.rdma_writes += 1
            self.hca.stats.bytes_written += nbytes
            self._m_write_ops.inc()
            self._m_write_bytes.inc(nbytes)
        else:
            self.hca.stats.sends += 1
            self.hca.stats.bytes_sent += nbytes
            self._m_send_ops.inc()
            self._m_send_bytes.inc(nbytes)

        psn = self.psn
        self.psn += 1
        crc = zlib.crc32(payload)
        for attempt in range(cfg.rc_retry_cnt + 1):
            if attempt:
                faults.stats.retransmissions += 1
                self._m_retrans.inc()
            t0 = sim.now
            yield sim.timeout(cfg.pci_latency)
            if nbytes:
                route = self.hca.dma_route_to(remote.hca)
                yield self.hca.net.transfer(
                    nbytes, route, label=f"qp{self.qpn}.{wr.opcode.value}")
            self.hca.timeline.span(
                f"node{self.hca.node_id}.hca", wr.opcode.value, t0,
                sim.now, cat="rdma",
                args={"bytes": nbytes, "qp": self.qpn,
                      "attempt": attempt})
            ack = sim.event()
            sim.spawn(self._deliver_rc(wr, payload, crc, remote, psn, ack),
                      name=f"qp{self.qpn}.deliver_rc")
            status = yield from self._await_response(
                ack, self._retry_timeout(attempt, nbytes))
            if status is not _TIMED_OUT:
                self._complete(
                    wr, status,
                    nbytes if status is WcStatus.SUCCESS else 0)
                return
        self._enter_error(wr)

    def _deliver_rc(self, wr: WorkRequest, payload: bytes, crc: int,
                    remote: "QueuePair", psn: int, ack: Event
                    ) -> Generator:
        sim, cfg = self.hca.sim, self.hca.cfg
        faults = self.hca.faults
        src, dst = self.hca.node_id, remote.hca.node_id
        verdict, extra = faults.packet_verdict(src, dst, sim.now)
        if verdict == "drop":
            return  # no ack: the requester times out and retransmits
        if extra:
            yield sim.timeout(extra)
        yield sim.timeout(self.hca.fabric.latency(src, dst))
        yield sim.timeout(cfg.pci_latency + cfg.hca_recv_processing)
        if verdict == "corrupt":
            # a byte flipped in transit; the responder's invariant CRC
            # rejects the packet (silent discard -> requester timeout).
            corrupted = faults.corrupt(payload, src, dst)
            if zlib.crc32(corrupted) != crc:
                faults.stats.crc_detected += 1
                return
            # empty payloads have nothing to flip; fall through

        nbytes = len(payload)
        shadow = remote.hca.shadow
        if psn < remote.expected_psn:
            # duplicate retransmit: do NOT place again, just re-ack the
            # cached outcome so the requester can complete.
            faults.stats.duplicates += 1
            cache = remote._resp_cache
            status = (cache[1] if cache and cache[0] == psn
                      else WcStatus.SUCCESS)
        elif wr.opcode is Opcode.RDMA_WRITE:
            if nbytes:
                if shadow is not None:
                    shadow.on_rdma_write(remote.hca, wr.remote_addr,
                                         nbytes, self.qpn)
                remote.hca.mem.write(wr.remote_addr, payload)
                watch = remote.hca._placement_watch.get(wr.remote_addr)
                if watch is not None:
                    watch()
            status = WcStatus.SUCCESS
            remote._resp_cache = (psn, status)
            remote.expected_psn = psn + 1
            remote.hca.inbound_gate.open()
        else:  # SEND consumes a receive WQE
            status = WcStatus.SUCCESS
            rr = None
            if remote.srq is not None:
                rr = remote.srq.try_consume()
                if rr is None:
                    # RNR NAK: discard before consuming a PSN and send
                    # no ack — the requester's stop-and-wait machinery
                    # retransmits after its timeout, by which time the
                    # consumer may have replenished the pool.
                    return
            elif not remote._rq:
                remote.error = True
                status = WcStatus.RNR_RETRY_EXC_ERR
            else:
                rr = remote._rq.popleft()
            if rr is not None:
                if rr.total_length < nbytes:
                    remote.error = True
                    status = WcStatus.LOC_LEN_ERR
                else:
                    off = 0
                    for sge in rr.sges:
                        take = min(sge.length, nbytes - off)
                        if take <= 0:
                            break
                        if shadow is not None:
                            shadow.on_rdma_write(remote.hca, sge.addr,
                                                 take, self.qpn,
                                                 op="send")
                        remote.hca.mem.write(sge.addr,
                                             payload[off:off + take])
                        off += take
                    remote._m_recv_ops.inc()
                    remote._m_recv_bytes.inc(nbytes)
                    remote.recv_cq.push(Completion(
                        wr_id=rr.wr_id, status=WcStatus.SUCCESS,
                        opcode=Opcode.RECV, byte_len=nbytes,
                        qp_num=remote.qpn))
            remote._resp_cache = (psn, status)
            remote.expected_psn = psn + 1
            remote.hca.inbound_gate.open()
        # ack leg back to the requester, itself subject to link faults
        # (a corrupted ack is discarded like a lost one).
        averdict, aextra = faults.packet_verdict(dst, src, sim.now)
        if averdict in ("drop", "corrupt"):
            if averdict == "corrupt":
                faults.stats.crc_detected += 1
            return
        if aextra:
            yield sim.timeout(aextra)
        yield sim.timeout(self.hca.fabric.latency(dst, src))
        if not ack.triggered:
            ack.succeed(status)

    def _execute_read_rc(self, wr: WorkRequest) -> Generator:
        sim, cfg = self.hca.sim, self.hca.cfg
        faults = self.hca.faults
        remote = self.remote
        assert remote is not None
        nbytes = wr.total_length
        # validate both ends up front (first-packet NAK semantics)
        for sge in wr.sges:
            self.hca.pd.lookup_lkey(sge.lkey).check_local(sge.addr,
                                                          sge.length)
        shadow = remote.hca.shadow
        if shadow is not None:
            shadow.on_remote_access(remote.hca, wr.rkey,
                                    wr.remote_addr, nbytes, "read")
        rmr = remote.hca.pd.lookup_rkey(wr.rkey)
        rmr.check_remote(wr.remote_addr, nbytes, Access.REMOTE_READ)
        self.psn += 1
        t0 = sim.now
        # a read is idempotent: on timeout the whole request/response
        # exchange is simply reissued — no dedup needed at the
        # responder, and the timeout budget covers both legs plus the
        # serialized responder turnaround.
        for attempt in range(cfg.rc_retry_cnt + 1):
            if attempt:
                faults.stats.retransmissions += 1
                self._m_retrans.inc()
            done = sim.event()
            sim.spawn(self._read_exchange_rc(wr, remote, nbytes, done),
                      name=f"qp{self.qpn}.read_rc")
            result = yield from self._await_response(
                done, self._retry_timeout(attempt, 2 * nbytes))
            if result is not _TIMED_OUT:
                break
        else:
            self._enter_error(wr)
            return
        if nbytes:
            off = 0
            local_shadow = self.hca.shadow
            for sge in wr.sges:
                if local_shadow is not None:
                    local_shadow.on_rdma_write(self.hca, sge.addr,
                                               sge.length, self.qpn,
                                               op="read-landing")
                self.hca.mem.write(sge.addr, result[off:off + sge.length])
                off += sge.length
        self.hca.stats.rdma_reads += 1
        self.hca.stats.bytes_read += nbytes
        self._m_read_ops.inc()
        self._m_read_bytes.inc(nbytes)
        self.hca.timeline.span(
            f"node{self.hca.node_id}.hca", "rdma_read", t0, sim.now,
            cat="rdma", args={"bytes": nbytes, "qp": self.qpn})
        self.hca.inbound_gate.open()
        self._complete(wr, WcStatus.SUCCESS, nbytes)

    def _read_exchange_rc(self, wr: WorkRequest, remote: "QueuePair",
                          nbytes: int, done: Event) -> Generator:
        sim, cfg = self.hca.sim, self.hca.cfg
        faults = self.hca.faults
        src, dst = self.hca.node_id, remote.hca.node_id
        verdict, extra = faults.packet_verdict(src, dst, sim.now)
        if verdict in ("drop", "corrupt"):
            if verdict == "corrupt":
                faults.stats.crc_detected += 1
            return
        if extra:
            yield sim.timeout(extra)
        yield sim.timeout(self.hca.fabric.latency(src, dst))
        yield remote.hca.read_engine.acquire()
        try:
            yield sim.timeout(cfg.hca_read_response)
            payload = remote.hca.mem.read(wr.remote_addr, nbytes)
            yield sim.timeout(cfg.pci_latency)
            if nbytes:
                route = remote.hca.dma_route_to(self.hca)
                yield self.hca.net.transfer(nbytes, route,
                                            label=f"qp{self.qpn}.read")
        finally:
            remote.hca.read_engine.release()
        rverdict, rextra = faults.packet_verdict(dst, src, sim.now)
        if rverdict == "drop":
            return
        if rverdict == "corrupt":
            if nbytes:
                faults.stats.crc_detected += 1
                return  # CRC rejects the response at the requester
        if rextra:
            yield sim.timeout(rextra)
        yield sim.timeout(self.hca.fabric.latency(dst, src))
        yield sim.timeout(cfg.pci_latency + cfg.hca_recv_processing)
        if not done.triggered:
            done.succeed(payload)

    def _execute_atomic_rc(self, wr: WorkRequest) -> Generator:
        sim, cfg = self.hca.sim, self.hca.cfg
        faults = self.hca.faults
        remote = self.remote
        assert remote is not None
        if len(wr.sges) != 1 or wr.sges[0].length != 8:
            raise IBError("atomics need exactly one 8-byte local SGE")
        sge = wr.sges[0]
        self.hca.pd.lookup_lkey(sge.lkey).check_local(sge.addr, 8)
        shadow = remote.hca.shadow
        if shadow is not None:
            shadow.on_remote_access(remote.hca, wr.rkey,
                                    wr.remote_addr, 8, "atomic")
        rmr = remote.hca.pd.lookup_rkey(wr.rkey)
        rmr.check_remote(wr.remote_addr, 8, Access.REMOTE_ATOMIC)
        if wr.remote_addr % 8:
            raise AccessError("atomic target must be 8-byte aligned")
        psn = self.psn
        self.psn += 1
        for attempt in range(cfg.rc_retry_cnt + 1):
            if attempt:
                faults.stats.retransmissions += 1
                self._m_retrans.inc()
            done = sim.event()
            sim.spawn(self._atomic_exchange_rc(wr, remote, psn, done),
                      name=f"qp{self.qpn}.atomic_rc")
            old_raw = yield from self._await_response(
                done, self._retry_timeout(attempt, 16))
            if old_raw is not _TIMED_OUT:
                break
        else:
            self._enter_error(wr)
            return
        local_shadow = self.hca.shadow
        if local_shadow is not None:
            local_shadow.on_rdma_write(self.hca, sge.addr, 8, self.qpn,
                                       op="atomic-landing")
        self.hca.mem.write(sge.addr, old_raw)
        self.hca.stats.atomics += 1
        self._m_atomic_ops.inc()
        self.hca.inbound_gate.open()
        self._complete(wr, WcStatus.SUCCESS, 8)

    def _atomic_exchange_rc(self, wr: WorkRequest, remote: "QueuePair",
                            psn: int, done: Event) -> Generator:
        sim, cfg = self.hca.sim, self.hca.cfg
        faults = self.hca.faults
        src, dst = self.hca.node_id, remote.hca.node_id
        verdict, extra = faults.packet_verdict(src, dst, sim.now)
        if verdict in ("drop", "corrupt"):
            if verdict == "corrupt":
                faults.stats.crc_detected += 1
            return
        if extra:
            yield sim.timeout(extra)
        yield sim.timeout(self.hca.fabric.latency(src, dst))
        yield remote.hca.read_engine.acquire()
        try:
            yield sim.timeout(cfg.hca_read_response)
            if psn < remote.expected_psn:
                # duplicate retransmit: return the cached old value —
                # the RMW must not run twice.
                faults.stats.duplicates += 1
                cache = remote._resp_cache
                if not cache or cache[0] != psn:
                    return  # stale beyond the cache: no response
                old_raw = cache[1]
            else:
                shadow = remote.hca.shadow
                old_raw = remote.hca.mem.read(wr.remote_addr, 8)
                old = struct.unpack("<Q", old_raw)[0]
                if wr.opcode is Opcode.FETCH_ADD:
                    new = (old + wr.compare_add) & 0xFFFFFFFFFFFFFFFF
                    if shadow is not None:
                        shadow.on_rdma_write(remote.hca, wr.remote_addr,
                                             8, self.qpn, op="atomic")
                    remote.hca.mem.write(wr.remote_addr,
                                         struct.pack("<Q", new))
                else:  # CMP_SWAP
                    if old == wr.compare_add:
                        if shadow is not None:
                            shadow.on_rdma_write(
                                remote.hca, wr.remote_addr, 8,
                                self.qpn, op="atomic")
                        remote.hca.mem.write(wr.remote_addr,
                                             struct.pack("<Q", wr.swap))
                remote._resp_cache = (psn, old_raw)
                remote.expected_psn = psn + 1
                remote.hca.inbound_gate.open()
        finally:
            remote.hca.read_engine.release()
        rverdict, rextra = faults.packet_verdict(dst, src, sim.now)
        if rverdict in ("drop", "corrupt"):
            if rverdict == "corrupt":
                faults.stats.crc_detected += 1
            return
        if rextra:
            yield sim.timeout(rextra)
        yield sim.timeout(self.hca.fabric.latency(dst, src))
        yield sim.timeout(cfg.pci_latency + cfg.hca_recv_processing)
        if not done.triggered:
            done.succeed(old_raw)

    def _complete(self, wr: WorkRequest, status: WcStatus,
                  nbytes: int) -> None:
        if wr.signaled or status is not WcStatus.SUCCESS:
            self.send_cq.push(Completion(
                wr_id=wr.wr_id, status=status, opcode=wr.opcode,
                byte_len=nbytes, qp_num=self.qpn))
            # a fresh CQE is observable by local pollers
            self.hca.inbound_gate.open()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        peer = self.remote.qpn if self.remote else None
        return f"<QP {self.qpn} node={self.hca.node_id} peer={peer}>"


class Hca:
    """One host channel adapter: PD, PCI DMA engine, QPs, CQs."""

    def __init__(self, sim: Simulator, net: FluidNetwork, fabric: Fabric,
                 cfg: HardwareConfig, node_id: int, mem: NodeMemory,
                 membus: MemBus, faults: Any = None,
                 obs: Any = None) -> None:
        self.sim = sim
        self.net = net
        self.fabric = fabric
        self.cfg = cfg
        self.node_id = node_id
        self.mem = mem
        self.membus = membus
        #: observability hub; counters/spans are pure bookkeeping that
        #: never yields, so the event sequence is identical on or off.
        self.obs = obs if obs is not None else NULL_OBS
        self.mscope = self.obs.metrics.scope(f"ib.node{node_id}")
        self.timeline = self.obs.timeline
        self._cq_counter = itertools.count()
        if faults is None:
            # local import: repro.faults is import-light, but importing
            # it at module scope would cycle through repro.ib.__init__.
            from ..faults import FaultState
            faults = FaultState()
        #: shared, cluster-wide fault-injection state (disabled by
        #: default — every hook short-circuits on an empty plan).
        self.faults = faults
        #: optional shadow-memory sanitizer (repro.analysis.shadow);
        #: None = hooks compile to a single attribute test.
        self.shadow = None
        self.pd = ProtectionDomain(mem, node_id)
        self.pci = FluidResource(f"pci[{node_id}]", cfg.pci_dma_bandwidth)
        #: serializes RDMA-read responses (InfiniHost read engine)
        self.read_engine = Resource(sim, capacity=1)
        #: pulsed on any inbound placement so pollers can re-check flags
        self.inbound_gate = Gate(sim)
        #: exact-address placement hooks: when an inbound RDMA write
        #: lands at a watched address, the callback runs (before the
        #: gate pulse).  Channels use this to mark per-connection
        #: receive state dirty so the CH3 progress engine can skip
        #: quiescent connections instead of polling all N of them.
        self._placement_watch: Dict[int, Callable[[], None]] = {}
        self.stats = HcaStats()
        fabric.attach(node_id)

    def watch_placement(self, addr: int,
                        cb: Callable[[], None]) -> None:
        """Invoke ``cb`` whenever an inbound RDMA write places bytes
        starting exactly at ``addr``."""
        self._placement_watch[addr] = cb

    def create_cq(self, depth: int = 4096, name: str = "") -> CompletionQueue:
        return CompletionQueue(
            # lint: allow(falsy-or-default, empty name = auto-name)
            self.sim, depth, name or f"cq[{self.node_id}]",
            metrics=self.mscope.scope(f"cq{next(self._cq_counter)}"))

    def create_qp(self, send_cq: CompletionQueue,
                  recv_cq: Optional[CompletionQueue] = None,
                  **kw) -> QueuePair:
        self.stats.qps_created += 1
        # identity check, not truthiness: an empty CQ is len()==0/falsy
        return QueuePair(
            self, send_cq,
            send_cq if recv_cq is None else recv_cq, **kw)

    def create_srq(self, max_wr: int = 4096,
                   name: str = "") -> SharedReceiveQueue:
        """Create a shared receive queue; pass it to :meth:`create_qp`
        via ``srq=`` to attach QPs."""
        self.stats.srqs_created += 1
        return SharedReceiveQueue(
            # lint: allow(falsy-or-default, empty name = auto-name)
            self, max_wr, name or f"srq[{self.node_id}]")

    def dma_route_to(self, remote: "Hca") -> List[Tuple[FluidResource, float]]:
        """Fluid route for payload DMA from this node's memory to
        ``remote``'s: local bus + PCI, the wire, remote PCI + bus."""
        cost = self.cfg.dma_bus_cost
        route: List[Tuple[FluidResource, float]] = [
            (self.membus.bus, cost), (self.pci, 1.0),
        ]
        route += self.fabric.path(self.node_id, remote.node_id)
        route += [(remote.pci, 1.0), (remote.membus.bus, cost)]
        return route
