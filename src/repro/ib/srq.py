"""Shared receive queues (IBA SRQ).

The paper's all-to-all RC layout dedicates a receive ring to every
peer, so pinned receive memory grows O(N) per rank — O(N²) across the
world.  An SRQ decouples receive buffers from connections: many QPs
attach to one shared pool of receive WQEs on the same HCA, and an
inbound SEND on *any* of them consumes the next WQE from the pool.
Buffer memory then scales with the *traffic* a rank actually absorbs,
not with the number of peers (the standard fix catalogued by RDMAvisor
and Taranov et al.; see docs/DESIGN.md).

Backpressure when the pool runs dry follows IB's RNR (receiver not
ready) NAK semantics, adapted to the simulator's two delivery paths:

* on the no-fault fast path, delivery blocks FIFO until a buffer is
  replenished (the requester's completion — and therefore its next
  send — is delayed exactly as an RNR retry loop would delay it,
  without simulating the NAK exchange event-by-event);
* on the fault-injected RC path the packet is silently discarded
  before consuming a PSN, so the requester's stop-and-wait machinery
  retransmits it — a literal RNR NAK minus the explicit NAK packet.

Both paths count ``rnr_stalls`` so protocol layers (and the tests) can
observe pool exhaustion.  A QP created with ``srq=`` rejects
``post_recv``: its owner must feed the shared pool instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..sim.sync import Store
from .types import QPError, RecvRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .hca import Hca

__all__ = ["SharedReceiveQueue"]


class SharedReceiveQueue:
    """A pool of receive WQEs shared by every QP attached to it.

    Credit-conservation invariant (property-tested): at any instant,

        posted_total - consumed_total == outstanding >= 0

    where *posted* counts successful :meth:`post` calls (initial fills
    and replenishes alike) and *consumed* counts WQEs handed to an
    inbound SEND.  ``rnr_stalls`` counts deliveries that found the
    pool empty.
    """

    def __init__(self, hca: "Hca", max_wr: int = 4096,
                 name: str = "", metrics: Any = None) -> None:
        if max_wr < 1:
            raise QPError("SRQ max_wr must be >= 1")
        self.hca = hca
        self.max_wr = max_wr
        # lint: allow(falsy-or-default, empty name means auto-name)
        self.name = name or f"srq[{hca.node_id}]"
        self._pool: Store = Store(hca.sim, capacity=max_wr)
        self.posted_total = 0
        self.consumed_total = 0
        self.rnr_stalls = 0
        m = metrics if metrics is not None else hca.mscope.scope("srq")
        self._m_posted = m.counter("srq_posted")
        self._m_consumed = m.counter("srq_consumed")
        self._m_stalls = m.counter("srq_rnr_stalls")

    @property
    def outstanding(self) -> int:
        """Receive WQEs currently available in the pool."""
        return len(self._pool)

    # -- consumer side (protocol layers) --------------------------------
    def post(self, rr: RecvRequest) -> None:
        """Add one receive WQE to the shared pool.

        Raises :class:`QPError` when the pool already holds ``max_wr``
        WQEs (like a real SRQ's ENOMEM on overflow).
        """
        # Validate lkeys eagerly, matching QueuePair.post_recv: real
        # HCAs check on placement, but eager checking surfaces
        # protocol bugs at the post site.
        for sge in rr.sges:
            self.hca.pd.lookup_lkey(sge.lkey).check_local(sge.addr,
                                                          sge.length)
        # A blocked delivery counts as a getter, which try_put hands
        # the item to directly — that still "fits", so gate on the
        # visible pool depth only when nobody is waiting.
        if not self._pool.try_put(rr):
            raise QPError(f"SRQ {self.name} full at max_wr={self.max_wr}")
        self.posted_total += 1
        self._m_posted.inc()
        if self.hca.shadow is not None:
            self.hca.shadow.on_srq_post(self, rr)

    # -- HCA delivery side ----------------------------------------------
    def try_consume(self) -> Optional[RecvRequest]:
        """Pop the next WQE, or None (and count an RNR stall) when the
        pool is dry — the fault path's discard-and-let-retransmit
        primitive."""
        ok, rr = self._pool.try_get()
        if not ok:
            self.rnr_stalls += 1
            self._m_stalls.inc()
            return None
        self.consumed_total += 1
        self._m_consumed.inc()
        if self.hca.shadow is not None:
            self.hca.shadow.on_srq_consume(self, rr)
        return rr

    def consume(self) -> Generator:
        """Pop the next WQE, blocking FIFO until one is replenished —
        the no-fault path's backpressure primitive.  FIFO ordering of
        the blocked deliveries preserves per-QP arrival order."""
        ok, rr = self._pool.try_get()
        if not ok:
            self.rnr_stalls += 1
            self._m_stalls.inc()
            rr = yield self._pool.get()
        self.consumed_total += 1
        self._m_consumed.inc()
        if self.hca.shadow is not None:
            self.hca.shadow.on_srq_consume(self, rr)
        return rr
