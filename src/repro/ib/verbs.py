"""VAPI-like consumer interface.

The paper programs the HCA through Mellanox VAPI; this module is the
equivalent consumer-facing API in the simulation.  It is where
*software* costs are charged: posting descriptors costs
``post_wqe_cpu``, registration costs the pin-down time, and the
polling helpers charge detection/poll costs — so higher layers never
talk to :mod:`repro.ib.hca` directly and every code path pays the same
tolls the paper's implementation did.

All methods that consume simulated time are generators (call with
``yield from``); the non-blocking ones (``poll_cq``) are plain calls.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple, Union

from ..config import HardwareConfig
from ..hw.cpu import Cpu
from ..sim.engine import Simulator
from .cq import CompletionQueue
from .hca import Hca, QueuePair
from .mr import MemoryRegion
from .srq import SharedReceiveQueue
from .types import (Access, Completion, Opcode, RecvRequest,
                    RegistrationError, Sge, WcStatus, WorkRequest)

__all__ = ["VapiContext"]


class VapiContext:
    """Per-process handle to one HCA (the VAPI ``hca_hndl``)."""

    def __init__(self, hca: Hca, cpu: Cpu) -> None:
        self.hca = hca
        self.cpu = cpu
        self.sim: Simulator = hca.sim
        self.cfg: HardwareConfig = hca.cfg

    # -- memory registration ----------------------------------------------
    def reg_mr(self, addr: int, length: int,
               access: Access = Access.all_access()
               ) -> Generator[None, None, MemoryRegion]:
        """Register (pin) a buffer; charges the pin-down cost.

        Raises :class:`RegistrationError` when fault injection says the
        pin-down fails (the cost is still paid: the OS walked the pages
        before refusing).  Only this charged, user-buffer path is
        injectable — establish-time ring registrations go through the
        protection domain directly.
        """
        yield from self.cpu.work(self.cfg.registration_cost(length))
        if self.hca.faults.take_reg_failure(self.hca.node_id):
            raise RegistrationError(
                f"node {self.hca.node_id}: injected registration "
                f"failure for [{addr:#x}, +{length})")
        mr = self.hca.pd.register(addr, length, access)
        self.hca.stats.registrations += 1
        return mr

    def dereg_mr(self, mr: MemoryRegion) -> Generator:
        yield from self.cpu.work(self.cfg.deregistration_cost(mr.length))
        self.hca.pd.deregister(mr)
        self.hca.stats.deregistrations += 1
        return None

    # -- queues ------------------------------------------------------------
    def create_cq(self, depth: int = 4096) -> CompletionQueue:
        return self.hca.create_cq(depth)

    def create_qp(self, send_cq: CompletionQueue,
                  recv_cq: Optional[CompletionQueue] = None,
                  **kw) -> QueuePair:
        return self.hca.create_qp(send_cq, recv_cq, **kw)

    def create_srq(self, max_wr: int = 4096) -> SharedReceiveQueue:
        return self.hca.create_srq(max_wr)

    # -- posting -------------------------------------------------------------
    def post_send(self, qp: QueuePair, wr: WorkRequest) -> Generator:
        yield from self.cpu.work(self.cfg.post_wqe_cpu)
        qp.post_send(wr)
        return None

    def post_recv(self, qp: QueuePair, rr: RecvRequest) -> Generator:
        yield from self.cpu.work(self.cfg.post_wqe_cpu)
        qp.post_recv(rr)
        return None

    def post_srq(self, srq: SharedReceiveQueue,
                 rr: RecvRequest) -> Generator:
        """Post a receive WQE to a shared receive queue; same
        descriptor-post CPU toll as a per-QP post."""
        yield from self.cpu.work(self.cfg.post_wqe_cpu)
        srq.post(rr)
        return None

    # Convenience builders ---------------------------------------------------
    def rdma_write(self, qp: QueuePair, local: Sequence[Tuple[int, int, int]],
                   remote_addr: int, rkey: int,
                   signaled: bool = True) -> Generator:
        """Post an RDMA write; ``local`` is [(addr, len, lkey), ...].
        Returns the WorkRequest (its wr_id matches the completion)."""
        wr = WorkRequest(
            opcode=Opcode.RDMA_WRITE,
            sges=[Sge(a, n, k) for a, n, k in local],
            remote_addr=remote_addr, rkey=rkey, signaled=signaled)
        yield from self.post_send(qp, wr)
        return wr

    def rdma_read(self, qp: QueuePair, local: Sequence[Tuple[int, int, int]],
                  remote_addr: int, rkey: int,
                  signaled: bool = True) -> Generator:
        wr = WorkRequest(
            opcode=Opcode.RDMA_READ,
            sges=[Sge(a, n, k) for a, n, k in local],
            remote_addr=remote_addr, rkey=rkey, signaled=signaled)
        yield from self.post_send(qp, wr)
        return wr

    def fetch_add(self, qp: QueuePair, local_addr: int, lkey: int,
                  remote_addr: int, rkey: int, add: int,
                  signaled: bool = True) -> Generator:
        """Atomic fetch-and-add on a remote 8-byte value; the old
        value lands at ``local_addr``."""
        wr = WorkRequest(
            opcode=Opcode.FETCH_ADD, sges=[Sge(local_addr, 8, lkey)],
            remote_addr=remote_addr, rkey=rkey, signaled=signaled,
            compare_add=add)
        yield from self.post_send(qp, wr)
        return wr

    def cmp_swap(self, qp: QueuePair, local_addr: int, lkey: int,
                 remote_addr: int, rkey: int, compare: int, swap: int,
                 signaled: bool = True) -> Generator:
        """Atomic compare-and-swap on a remote 8-byte value."""
        wr = WorkRequest(
            opcode=Opcode.CMP_SWAP, sges=[Sge(local_addr, 8, lkey)],
            remote_addr=remote_addr, rkey=rkey, signaled=signaled,
            compare_add=compare, swap=swap)
        yield from self.post_send(qp, wr)
        return wr

    def send(self, qp: QueuePair, local: Sequence[Tuple[int, int, int]],
             signaled: bool = True) -> Generator:
        wr = WorkRequest(
            opcode=Opcode.SEND,
            sges=[Sge(a, n, k) for a, n, k in local],
            signaled=signaled)
        yield from self.post_send(qp, wr)
        return wr

    # -- completion handling ---------------------------------------------------
    def poll_cq(self, cq: CompletionQueue) -> Optional[Completion]:
        """Non-blocking poll (zero simulated cost; spin loops should use
        :meth:`wait_cq`, which charges realistic detection costs)."""
        return cq.poll()

    def poll_cq_many(self, cq: CompletionQueue,
                     budget: int) -> List[Completion]:
        """Bounded batch drain of up to ``budget`` CQEs (zero simulated
        cost — the caller charges one poll cost for the batch, the
        amortization the adaptive progress engine exploits)."""
        return cq.poll_many(budget)

    def wait_cq(self, cq: CompletionQueue) -> Generator:
        """Spin on ``cq`` until a completion arrives; charges poll CPU
        plus the detection latency of seeing a fresh CQE over PCI."""
        first = True
        while True:
            cqe = cq.poll()
            if cqe is not None:
                if not first:
                    # CQE arrived while we slept: detection delay.
                    yield self.sim.timeout(self.cfg.poll_detect_latency)
                yield from self.cpu.work(self.cfg.cq_poll_cpu)
                return cqe
            first = False
            yield cq.wait_event()

    def wait_wr(self, cq: CompletionQueue, wr: WorkRequest) -> Generator:
        """Wait for the completion of one specific work request;
        completions for other WRs polled meanwhile are an error here
        (protocol layers that multiplex keep their own ledgers)."""
        cqe = yield from self.wait_cq(cq)
        if cqe.wr_id != wr.wr_id:
            raise RuntimeError(
                f"expected completion of wr {wr.wr_id}, got {cqe.wr_id}"
            )
        return cqe
