"""Switched fabric: links and the (non-blocking) crossbar switch.

Topology is the paper's: every node's HCA port cabled to one
InfiniScale switch.  Each cable is modelled as two fluid resources
(one per direction); the switch itself is non-blocking, so a path
from node *a* to node *b* consumes ``a``'s uplink and ``b``'s
downlink.  Propagation plus switch crossing is a single
``wire_latency`` constant.

Link capacities are *payload* bytes/s — 8b/10b coding and packet
header overhead at the 2 KB MTU are folded into
``HardwareConfig.link_bandwidth``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import HardwareConfig
from ..sim.engine import Simulator
from ..sim.fluid import FluidNetwork, FluidResource

__all__ = ["Fabric"]


class Fabric:
    """One switch plus the cables of every attached node."""

    def __init__(self, sim: Simulator, net: FluidNetwork,
                 cfg: HardwareConfig) -> None:
        self.sim = sim
        self.net = net
        self.cfg = cfg
        self._up: Dict[int, FluidResource] = {}    # node -> node->switch
        self._down: Dict[int, FluidResource] = {}  # node -> switch->node

    def attach(self, node_id: int) -> None:
        """Cable ``node_id`` to the switch."""
        if node_id in self._up:
            raise ValueError(f"node {node_id} already attached")
        bw = self.cfg.link_bandwidth
        self._up[node_id] = FluidResource(f"link[{node_id}].up", bw)
        self._down[node_id] = FluidResource(f"link[{node_id}].down", bw)

    @property
    def nodes(self) -> List[int]:
        return sorted(self._up)

    def path(self, src: int, dst: int) -> List[Tuple[FluidResource, float]]:
        """Fluid route segments for a message src -> dst (excluding the
        endpoints' PCI/memory resources, which the HCA adds)."""
        if src not in self._up:
            raise KeyError(f"node {src} not attached to fabric")
        if dst not in self._down:
            raise KeyError(f"node {dst} not attached to fabric")
        if src == dst:
            return []  # loopback never touches the wire
        return [(self._up[src], 1.0), (self._down[dst], 1.0)]

    def latency(self, src: int, dst: int) -> float:
        """One-way propagation + switch crossing."""
        return 0.0 if src == dst else self.cfg.wire_latency

    def uplink(self, node_id: int) -> FluidResource:
        return self._up[node_id]

    def downlink(self, node_id: int) -> FluidResource:
        return self._down[node_id]
