"""Completion queues.

Applications poll a CQ for completions of signaled work requests.
Polling costs CPU time (charged by the caller through
:meth:`CompletionQueue.poll`'s returned cost, or by the blocking helper
:meth:`wait`).  The ``poll_detect_latency`` of the hardware config is
applied where completions are *generated* (HCA side), modelling the
delay before a spinning consumer observes the CQE over the bus.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..obs import NULL_METRICS
from ..sim.engine import Event, Simulator
from ..sim.sync import Fifo, Gate
from .types import Completion, WcStatus

__all__ = ["CompletionQueue", "CQOverflowError"]


class CQOverflowError(Exception):
    pass


class CompletionQueue:
    def __init__(self, sim: Simulator, depth: int = 4096, name: str = "",
                 metrics: Any = None) -> None:
        if depth < 1:
            raise ValueError("CQ depth must be >= 1")
        self.sim = sim
        self.depth = depth
        self.name = name
        self._entries: Fifo = Fifo()
        self._gate = Gate(sim)
        self.completions_generated = 0
        #: CQEs pushed with a non-SUCCESS status (error observability
        #: for the layers above and for the fault-injection tests).
        self.error_completions = 0
        m = metrics if metrics is not None else NULL_METRICS
        self._m_completions = m.counter("completions")
        self._m_errors = m.counter("error_completions")
        #: how many CQEs each poll/poll_many call drains — the paper's
        #: progress engines batch better under load, and this shows it.
        self._m_poll_depth = m.histogram("poll_depth")

    def __len__(self) -> int:
        return len(self._entries)

    # -- HCA side -------------------------------------------------------
    def push(self, cqe: Completion) -> None:
        """Called by the HCA when a work request completes."""
        if len(self._entries) >= self.depth:
            raise CQOverflowError(
                f"CQ {self.name!r} overflow at depth {self.depth}"
            )
        cqe.timestamp = self.sim.now
        self._entries.append(cqe)
        self.completions_generated += 1
        self._m_completions.inc()
        if cqe.status is not WcStatus.SUCCESS:
            self.error_completions += 1
            self._m_errors.inc()
        self._gate.open()

    # -- consumer side ----------------------------------------------------
    def poll(self) -> Optional[Completion]:
        """Non-blocking poll; returns one CQE or None."""
        if self._entries:
            self._m_poll_depth.observe(1)
            return self._entries.popleft()
        self._m_poll_depth.observe(0)
        return None

    def poll_many(self, max_entries: int) -> List[Completion]:
        """Bounded batch drain: pop up to ``max_entries`` CQEs in one
        call.  This is the budgeted-poll primitive of the adaptive
        progress engine — one detection/poll cost covers the whole
        batch instead of one per CQE, while the bound keeps a single
        busy CQ from starving the other connections' progress."""
        out = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        self._m_poll_depth.observe(len(out))
        return out

    def pending(self) -> int:
        """CQEs currently queued (free to read: the consumer charges
        poll cost only when it actually drains)."""
        return len(self._entries)

    def wait(self) -> Generator:
        """Block until a completion is available, then pop it.

        This is a simulation convenience (like an event-driven
        ``ibv_get_cq_event``); the protocol layers that model a real
        polling loop use :meth:`poll` plus their own spin cost.
        """
        while not self._entries:
            yield self._gate.wait()
        return self._entries.popleft()

    def wait_event(self) -> Event:
        """An event that fires the next time a completion is pushed."""
        return self._gate.wait()
