"""InfiniBand verb-layer data types.

Names follow the InfiniBand Architecture specification (and the VAPI
programming interface the paper used): work queue requests (WQRs,
a.k.a. descriptors / WQEs), completion queue entries (CQEs), opcodes,
and access flags.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = [
    "Opcode", "WcStatus", "Access", "Sge", "WorkRequest", "RecvRequest",
    "Completion", "IBError", "QPError", "AccessError", "RnrError",
    "RegistrationError",
]

_wrid = itertools.count(1)


class IBError(Exception):
    """Base class for verb-layer errors."""


class QPError(IBError):
    """QP in wrong state / bad transition."""


class AccessError(IBError):
    """Remote or local key/permission/bounds violation."""


class RnrError(IBError):
    """Receiver not ready: SEND arrived with no posted receive."""


class RegistrationError(IBError):
    """Memory registration (pin-down) failed — the OS refused to lock
    the pages or the HCA translation table is full.  Raised by the
    verbs layer; consumers with a fallback path (the zero-copy channel)
    degrade to streaming through preregistered buffers."""


class Opcode(enum.Enum):
    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_READ = "rdma_read"
    # IB atomics (§9 future work: "atomic operations in InfiniBand").
    # Both operate on a remote 8-byte value and return its old value.
    FETCH_ADD = "fetch_add"
    CMP_SWAP = "cmp_swap"

    # Receive-side completion opcodes
    RECV = "recv"


class WcStatus(enum.Enum):
    SUCCESS = "success"
    LOC_LEN_ERR = "local_length_error"
    LOC_PROT_ERR = "local_protection_error"
    REM_ACCESS_ERR = "remote_access_error"
    RNR_RETRY_EXC_ERR = "rnr_retry_exceeded"
    RETRY_EXC_ERR = "transport_retry_exceeded"
    WR_FLUSH_ERR = "flushed"


class Access(enum.Flag):
    LOCAL_WRITE = enum.auto()
    REMOTE_WRITE = enum.auto()
    REMOTE_READ = enum.auto()
    REMOTE_ATOMIC = enum.auto()
    NONE = 0

    @classmethod
    def all_access(cls) -> "Access":
        return (cls.LOCAL_WRITE | cls.REMOTE_WRITE | cls.REMOTE_READ
                | cls.REMOTE_ATOMIC)


@dataclass
class Sge:
    """Scatter/gather element: a local (addr, length, lkey) triple."""
    addr: int
    length: int
    lkey: int


@dataclass
class WorkRequest:
    """A send-queue work request (descriptor).

    For RDMA operations, ``remote_addr``/``rkey`` name the target
    buffer; for SEND they are unused.  Multiple SGEs gather local data
    (the paper: "multiple data segments can be specified at the
    source").  Atomics use ``compare_add`` (the addend for FETCH_ADD,
    the compare value for CMP_SWAP) and ``swap`` (CMP_SWAP only); the
    single 8-byte SGE receives the returned old value.
    """
    opcode: Opcode
    sges: List[Sge]
    remote_addr: int = 0
    rkey: int = 0
    signaled: bool = True
    compare_add: int = 0
    swap: int = 0
    #: opaque user cookie returned in the completion
    wr_id: int = field(default_factory=lambda: next(_wrid))

    @property
    def total_length(self) -> int:
        return sum(s.length for s in self.sges)


@dataclass
class RecvRequest:
    """A receive-queue work request for channel-semantics SENDs."""
    sges: List[Sge]
    wr_id: int = field(default_factory=lambda: next(_wrid))

    @property
    def total_length(self) -> int:
        return sum(s.length for s in self.sges)


@dataclass
class Completion:
    """A completion queue entry."""
    wr_id: int
    status: WcStatus
    opcode: Opcode
    byte_len: int = 0
    qp_num: int = 0
    #: simulation time at which the completion was generated
    timestamp: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS
