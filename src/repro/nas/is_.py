"""IS — Integer Sort.

Bucket sort of uniformly distributed integer keys: local histogram,
allreduce to size the buckets, then an all-to-all key exchange and a
local counting sort.  IS is bandwidth-bound on the alltoall, which is
where the channel designs differ.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from ..mpi.datatypes import SUM
from .common import NasResult, block_range, nas_rng

__all__ = ["is_kernel", "IS_CLASSES"]

#: (log2 total keys, log2 max key, iterations)
IS_CLASSES = {
    "T": (10, 11, 3),
    "S": (14, 16, 5),
    "W": (18, 19, 5),
}


def is_kernel(mpi, klass: str = "S", seed: int = 161803
              ) -> Generator[None, None, NasResult]:
    log_n, log_maxkey, iters = IS_CLASSES[klass]
    n = 1 << log_n
    max_key = 1 << log_maxkey
    p = mpi.size
    lo, hi = block_range(n, p, mpi.rank)
    rng = nas_rng(seed + mpi.rank * 7919)
    keys = rng.integers(0, max_key, size=hi - lo, dtype=np.int64)

    t0 = mpi.wtime()
    verified = True
    sorted_keys = keys
    for _it in range(iters):
        # 1. global histogram over p coarse buckets
        edges = np.linspace(0, max_key, p + 1).astype(np.int64)
        bucket_of = np.minimum(
            np.searchsorted(edges, keys, side="right") - 1, p - 1)
        local_counts = np.bincount(bucket_of, minlength=p
                                   ).astype(np.float64)
        total_counts = np.zeros(p)
        yield from mpi.Allreduce(local_counts, total_counts, op=SUM)

        # 2. all-to-all key exchange (manual alltoallv: counts differ)
        order = np.argsort(bucket_of, kind="stable")
        keys_by_bucket = keys[order]
        split_at = np.cumsum(np.bincount(bucket_of, minlength=p))[:-1]
        outgoing: List[np.ndarray] = np.split(keys_by_bucket, split_at)

        # exchange counts, then payloads
        send_counts = np.array([len(o) for o in outgoing],
                               dtype=np.float64)
        recv_counts = np.zeros(p)
        yield from mpi.Alltoall(send_counts, recv_counts)

        received = [outgoing[mpi.rank]]
        reqs = []
        for step in range(1, p):
            dst = (mpi.rank + step) % p
            r = yield from mpi.Isend(
                outgoing[dst].astype(np.int64), dest=dst, tag=40 + _it)
            reqs.append(r)
        for step in range(1, p):
            src = (mpi.rank - step) % p
            nrecv = int(recv_counts[src])
            buf = mpi.alloc(max(nrecv * 8, 1), "is.recv")
            st = yield from mpi.Recv(buf, source=src, tag=40 + _it)
            got = np.frombuffer(buf.read()[:st.count], dtype=np.int64)
            received.append(got.copy())
        yield from mpi.Waitall(reqs)

        # 3. local sort of my bucket
        mine = np.concatenate(received)
        sorted_keys = np.sort(mine, kind="stable")

        # per-iteration check: every key landed in my bucket range
        if mine.size and (mine.min() < edges[mpi.rank]
                          or mine.max() > edges[mpi.rank + 1]):
            verified = False

    # full verification: boundaries between ranks are ordered and the
    # global multiset is preserved (checksum)
    local_edge = np.array([
        float(sorted_keys[0]) if sorted_keys.size else np.inf,
        float(sorted_keys[-1]) if sorted_keys.size else -np.inf,
        float(sorted_keys.sum()),
        float(sorted_keys.size),
    ])
    gathered = yield from mpi.allgather(local_edge.tolist())
    if mpi.rank == 0:
        prev_max = -np.inf
        total_n = 0
        for lo_v, hi_v, _s, cnt in gathered:
            if cnt > 0:
                if lo_v < prev_max:
                    verified = False
                prev_max = hi_v
                total_n += int(cnt)
        if total_n != n:
            verified = False
    verified_all = yield from mpi.allreduce(verified,
                                            op=_AND_OP)
    elapsed = mpi.wtime() - t0
    return NasResult("is", bool(verified_all),
                     float(sorted_keys.size), elapsed, iterations=iters)


from ..mpi.datatypes import Op  # noqa: E402

_AND_OP = Op("and", None, lambda a, b: bool(a) and bool(b))
