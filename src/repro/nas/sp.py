"""SP — Scalar Pentadiagonal solver (thin wrapper over the shared ADI
machinery; see :mod:`repro.nas.adi`)."""

from __future__ import annotations

from typing import Generator

from .adi import ADI_CLASSES, adi_kernel, adi_serial_reference
from .common import NasResult

__all__ = ["sp_kernel", "sp_serial_reference", "SP_CLASSES"]

SP_CLASSES = ADI_CLASSES


def sp_kernel(mpi, klass: str = "S", seed: int = 662607
              ) -> Generator[None, None, NasResult]:
    result = yield from adi_kernel(mpi, "sp", klass, seed)
    return result


def sp_serial_reference(klass: str = "S", seed: int = 662607) -> float:
    return adi_serial_reference("sp", klass, seed)
