"""FT — 3D FFT PDE solver.

Solves u_t = alpha * laplacian(u) spectrally: forward 3D FFT once,
then per time step multiply by the exponential factors and inverse
transform to evaluate a checksum.  The 3D FFT is distributed by slab
decomposition along z: local 2D FFTs over (x, y), a global transpose
(alltoall), then 1D FFTs along the remaining axis.  FT is the most
alltoall-heavy NAS kernel — large dense exchanges.
"""

from __future__ import annotations

from typing import Generator, Tuple

import numpy as np

from .common import NasResult, nas_rng

__all__ = ["ft_kernel", "ft_serial_reference", "FT_CLASSES"]

#: (nx, ny, nz, timesteps)
FT_CLASSES = {
    "T": (16, 16, 16, 3),
    "S": (32, 32, 32, 4),
    "W": (64, 64, 32, 4),
}

_ALPHA = 1e-6


def _exp_factors(nx: int, ny: int, nz: int, step: int) -> np.ndarray:
    kx = np.fft.fftfreq(nx) * nx
    ky = np.fft.fftfreq(ny) * ny
    kz = np.fft.fftfreq(nz) * nz
    k2 = (kx[:, None, None] ** 2 + ky[None, :, None] ** 2
          + kz[None, None, :] ** 2)
    return np.exp(-4.0 * _ALPHA * (np.pi ** 2) * k2 * step)


def _transpose_z_to_x(mpi, local: np.ndarray, nx, ny, nz
                      ) -> Generator[None, None, np.ndarray]:
    """Global transpose: z-slabs -> x-slabs via alltoall.

    ``local``: (nx, ny, nz/p) complex.  Returns (nx/p, ny, nz)."""
    p = mpi.size
    nzl = nz // p
    nxl = nx // p
    # chop my z-slab into p x-blocks, one per destination
    send = np.ascontiguousarray(
        local.reshape(p, nxl, ny, nzl)).view(np.float64)
    recv = np.zeros_like(send)
    yield from mpi.Alltoall(send.reshape(-1), recv.reshape(-1))
    blocks = recv.view(np.complex128).reshape(p, nxl, ny, nzl)
    # block r holds my x-slab's z-range from rank r
    out = np.concatenate([blocks[r] for r in range(p)], axis=2)
    return out


def _transpose_x_to_z(mpi, local: np.ndarray, nx, ny, nz
                      ) -> Generator[None, None, np.ndarray]:
    """Inverse of :func:`_transpose_z_to_x`."""
    p = mpi.size
    nzl = nz // p
    nxl = nx // p
    send = np.ascontiguousarray(
        np.stack(np.split(local, p, axis=2))).view(np.float64)
    recv = np.zeros_like(send)
    yield from mpi.Alltoall(send.reshape(-1), recv.reshape(-1))
    blocks = recv.view(np.complex128).reshape(p, nxl, ny, nzl)
    out = np.concatenate([blocks[r] for r in range(p)], axis=0)
    return out


def _fft3d(mpi, local, nx, ny, nz, inverse=False):
    """Distributed 3D FFT of a z-slab-partitioned array."""
    fft2 = np.fft.ifft2 if inverse else np.fft.fft2
    fft1 = np.fft.ifft if inverse else np.fft.fft
    work = fft2(local, axes=(0, 1))
    work = yield from _transpose_z_to_x(mpi, work, nx, ny, nz)
    work = fft1(work, axis=2)
    work = yield from _transpose_x_to_z(mpi, work, nx, ny, nz)
    return work


def ft_kernel(mpi, klass: str = "S", seed: int = 141421
              ) -> Generator[None, None, NasResult]:
    nx, ny, nz, steps = FT_CLASSES[klass]
    p = mpi.size
    if nz % p or nx % p:
        raise ValueError(f"FT needs p to divide nx and nz (p={p})")
    nzl = nz // p
    rng = nas_rng(seed)
    full = rng.standard_normal((nx, ny, nz)) \
        + 1j * rng.standard_normal((nx, ny, nz))
    local = full[:, :, mpi.rank * nzl:(mpi.rank + 1) * nzl].copy()

    t0 = mpi.wtime()
    freq = yield from _fft3d(mpi, local, nx, ny, nz)
    checksums = []
    kz = np.fft.fftfreq(nz) * nz
    kz_local = kz[mpi.rank * nzl:(mpi.rank + 1) * nzl]
    kx = np.fft.fftfreq(nx) * nx
    ky = np.fft.fftfreq(ny) * ny
    k2_local = (kx[:, None, None] ** 2 + ky[None, :, None] ** 2
                + kz_local[None, None, :] ** 2)
    for step in range(1, steps + 1):
        evolved = freq * np.exp(-4.0 * _ALPHA * (np.pi ** 2)
                                * k2_local * step)
        back = yield from _fft3d(mpi, evolved, nx, ny, nz, inverse=True)
        # NAS-style checksum: sum of a stride of elements
        local_sum = complex(back.sum())
        total = yield from mpi.allreduce(
            (local_sum.real, local_sum.imag), op=_CPLX_SUM)
        checksums.append(complex(total[0], total[1]))
    elapsed = mpi.wtime() - t0

    ref = ft_serial_reference(klass, seed)
    verified = all(
        abs(c - r) <= 1e-6 * max(abs(r), 1.0)
        for c, r in zip(checksums, ref))
    return NasResult("ft", verified,
                     abs(checksums[-1]), elapsed, iterations=steps)


def ft_serial_reference(klass: str = "S", seed: int = 141421):
    nx, ny, nz, steps = FT_CLASSES[klass]
    rng = nas_rng(seed)
    full = rng.standard_normal((nx, ny, nz)) \
        + 1j * rng.standard_normal((nx, ny, nz))
    freq = np.fft.fftn(full)
    out = []
    for step in range(1, steps + 1):
        evolved = freq * _exp_factors(nx, ny, nz, step)
        back = np.fft.ifftn(evolved)
        out.append(complex(back.sum()))
    return out


from ..mpi.datatypes import Op  # noqa: E402

_CPLX_SUM = Op("csum", None,
               lambda a, b: (a[0] + b[0], a[1] + b[1]))
