"""EP — Embarrassingly Parallel.

Each rank generates its share of uniform pairs, maps them through the
Marsaglia polar method's acceptance test, and tallies Gaussian pairs
per annulus; one allreduce combines the tallies.  Communication is a
single reduction — EP measures raw per-node throughput, which is why
the paper's three designs tie on it.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..mpi.datatypes import SUM
from .common import NasResult, block_range, nas_rng

__all__ = ["ep_kernel", "ep_serial_reference", "EP_CLASSES"]

#: log2 of pair count per class (real, runnable sizes)
EP_CLASSES = {"T": 12, "S": 16, "W": 18}


def _tally(lo: int, hi: int, seed: int):
    """Deterministic batch: same result regardless of partitioning,
    because each index derives its own counter-based sample."""
    rng = nas_rng(seed)
    # counter-based: jump the generator to `lo` cheaply by hashing
    # indices instead of sequential draws
    idx = np.arange(lo, hi, dtype=np.uint64)
    # splitmix64-style hash -> two uniforms per index
    z = (idx + np.uint64(0x9E3779B97F4A7C15)) * np.uint64(
        0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    u1 = (z >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    z2 = (idx * np.uint64(0xD1342543DE82EF95) + np.uint64(seed * 2 + 1))
    z2 ^= z2 >> np.uint64(29)
    z2 *= np.uint64(0x2545F4914F6CDD1D)
    z2 ^= z2 >> np.uint64(32)
    u2 = (z2 >> np.uint64(11)).astype(np.float64) / float(1 << 53)
    x = 2.0 * u1 - 1.0
    y = 2.0 * u2 - 1.0
    t = x * x + y * y
    ok = (t <= 1.0) & (t > 0.0)
    f = np.zeros_like(t)
    f[ok] = np.sqrt(-2.0 * np.log(t[ok]) / t[ok])
    gx = np.abs(x[ok] * f[ok])
    gy = np.abs(y[ok] * f[ok])
    m = np.maximum(gx, gy).astype(np.int64)
    counts = np.bincount(m[m < 10], minlength=10).astype(np.float64)
    sx = float((x[ok] * f[ok]).sum())
    sy = float((y[ok] * f[ok]).sum())
    return counts, sx, sy


def ep_kernel(mpi, klass: str = "S", seed: int = 271828
              ) -> Generator[None, None, NasResult]:
    n = 1 << EP_CLASSES[klass]
    lo, hi = block_range(n, mpi.size, mpi.rank)
    t0 = mpi.wtime()
    counts, sx, sy = _tally(lo, hi, seed)
    local = np.concatenate([counts, [sx, sy]])
    out = np.zeros_like(local)
    yield from mpi.Allreduce(local, out, op=SUM)
    elapsed = mpi.wtime() - t0
    ref_counts, ref_sx, ref_sy = ep_serial_reference(klass, seed)
    verified = (np.allclose(out[:10], ref_counts)
                and abs(out[10] - ref_sx) < 1e-6 * max(abs(ref_sx), 1)
                and abs(out[11] - ref_sy) < 1e-6 * max(abs(ref_sy), 1))
    return NasResult("ep", verified, float(out[:10].sum()), elapsed,
                     iterations=1,
                     extra={"counts": out[:10].tolist()})


def ep_serial_reference(klass: str = "S", seed: int = 271828):
    n = 1 << EP_CLASSES[klass]
    return _tally(0, n, seed)
