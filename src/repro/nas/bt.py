"""BT — Block Tridiagonal solver (thin wrapper over the shared ADI
machinery; see :mod:`repro.nas.adi`)."""

from __future__ import annotations

from typing import Generator

from .adi import ADI_CLASSES, adi_kernel, adi_serial_reference
from .common import NasResult

__all__ = ["bt_kernel", "bt_serial_reference", "BT_CLASSES"]

BT_CLASSES = ADI_CLASSES


def bt_kernel(mpi, klass: str = "S", seed: int = 662607
              ) -> Generator[None, None, NasResult]:
    result = yield from adi_kernel(mpi, "bt", klass, seed)
    return result


def bt_serial_reference(klass: str = "S", seed: int = 662607) -> float:
    return adi_serial_reference("bt", klass, seed)
