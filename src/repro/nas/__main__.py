"""Command-line NAS runner.

    python -m repro.nas cg --class T --np 4 --design zerocopy
    python -m repro.nas all --class T --np 4       # every kernel
    python -m repro.nas cg --skeleton A --np 4     # class A skeleton
"""

from __future__ import annotations

import argparse
import sys

from ..mpi import run_mpi
from . import KERNELS, run_skeleton


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.nas",
        description="Run NAS Parallel Benchmark kernels on the "
                    "simulated cluster")
    ap.add_argument("benchmark",
                    choices=sorted(KERNELS) + ["all"])
    ap.add_argument("--class", dest="klass", default="T",
                    choices=["T", "S", "W"],
                    help="real-kernel problem class (default T)")
    ap.add_argument("--skeleton", default=None, choices=["A", "B"],
                    help="run the class A/B performance skeleton "
                         "instead of the real kernel")
    ap.add_argument("--np", dest="nprocs", type=int, default=4)
    ap.add_argument("--design", default="zerocopy")
    args = ap.parse_args(argv)

    names = sorted(KERNELS) if args.benchmark == "all" \
        else [args.benchmark]
    status = 0
    for name in names:
        if args.skeleton:
            sec, mops = run_skeleton(name, args.skeleton, args.nprocs,
                                     args.design)
            print(f"{name.upper()}.{args.skeleton} x{args.nprocs} "
                  f"[{args.design}]: {sec:.2f}s simulated, "
                  f"{mops:.1f} Mop/s")
        else:
            results, elapsed = run_mpi(args.nprocs, KERNELS[name],
                                       design=args.design,
                                       args=(args.klass,))
            r = results[0]
            ok = "VERIFIED" if r.verified else "FAILED VERIFICATION"
            print(f"{name.upper()}.{args.klass} x{args.nprocs} "
                  f"[{args.design}]: {ok}, value={r.value:.6g}, "
                  f"{elapsed * 1e3:.2f} ms simulated")
            if not r.verified:
                status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
