"""Shared infrastructure for the NAS Parallel Benchmark kernels.

Two modes exist (see DESIGN.md):

* **real mode** — the kernels in this package do genuine parallel math
  over the simulated MPI at reduced problem sizes (class "T" for tiny,
  "S"-like), and their results are verified against serial references
  in the test suite;
* **skeleton mode** (:mod:`repro.nas.skeleton`) — class A/B runs replay
  each benchmark's communication pattern with class-correct message
  sizes and a modelled compute time per iteration, which is what the
  Fig. 16/17 reproductions use (running real class A data through a
  pure-Python simulator would be compute-bound noise, not signal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

import numpy as np

__all__ = ["NasResult", "nas_rng", "verify_close", "block_range",
           "factor_2d"]


@dataclass
class NasResult:
    """Outcome of one kernel run on one rank."""
    benchmark: str
    verified: bool
    value: float            # benchmark-specific figure of merit
    elapsed: float          # simulated seconds (rank-local)
    iterations: int = 0
    extra: Optional[dict] = None


def nas_rng(seed: int) -> np.random.Generator:
    """Deterministic per-test RNG (stands in for the NAS LCG)."""
    return np.random.default_rng(seed)


def verify_close(value: float, reference: float,
                 epsilon: float = 1e-8) -> bool:
    denom = max(abs(reference), 1e-300)
    return abs(value - reference) / denom <= epsilon


def block_range(n: int, p: int, r: int) -> Tuple[int, int]:
    """Contiguous block partition of ``n`` items over ``p`` ranks:
    returns [lo, hi) for rank ``r``; remainders spread over the first
    ranks."""
    base, rem = divmod(n, p)
    lo = r * base + min(r, rem)
    hi = lo + base + (1 if r < rem else 0)
    return lo, hi


def factor_2d(p: int) -> Tuple[int, int]:
    """Most-square 2D factorization of ``p`` (rows, cols)."""
    best = (1, p)
    for a in range(1, int(p ** 0.5) + 1):
        if p % a == 0:
            best = (a, p // a)
    return best
