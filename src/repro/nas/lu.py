"""LU — SSOR wavefront solver.

The defining communication behaviour of NAS LU is its 2D pencil
decomposition with *pipelined wavefronts*: each k-plane's lower-
triangular sweep needs boundary strips from its x- and y-predecessor
neighbours before it can start, and feeds its successors — thousands
of small messages whose latency the paper's piggybacking optimization
targets.

We solve (I - c·S) u = f with S = shift(+x) + shift(+y) + shift(+z)
(strictly lower-triangular in lexicographic order) by forward
substitution, then the adjoint backward sweep — a genuine
data-dependent wavefront, verified against a serial reference.

Decomposition: ranks form a (prow × pcol) grid over (x, y); each rank
owns an (nxl × nyl × n) pencil.  "North"/"south" are the x-direction
predecessor/successor, "west"/"east" the y-direction ones.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..mpi.datatypes import SUM
from .common import NasResult, block_range, factor_2d, nas_rng

__all__ = ["lu_kernel", "lu_serial_reference", "LU_CLASSES"]

#: (grid n, sweeps)
LU_CLASSES = {"T": (12, 2), "S": (20, 2), "W": (32, 3)}

_C = 0.4


def _forward_plane(u, f, north_edge, west_edge, k):
    """Forward substitution on one k-plane.  ``north_edge[j]`` =
    u[i0-1, j, k]; ``west_edge[i]`` = u[i, j0-1, k]."""
    nxl, nyl = f.shape[0], f.shape[1]
    below = u[:, :, k - 1] if k > 0 else np.zeros((nxl, nyl))
    for i in range(nxl):
        xi_prev = u[i - 1, :, k] if i > 0 else north_edge
        prev_j = west_edge[i]
        for j in range(nyl):
            val = f[i, j, k] + _C * (xi_prev[j] + prev_j + below[i, j])
            u[i, j, k] = val
            prev_j = val


def _backward_plane(u, g, south_edge, east_edge, k, nz):
    """Adjoint sweep.  ``south_edge[j]`` = u[i1, j, k];
    ``east_edge[i]`` = u[i, j1, k] (the successor edges)."""
    nxl, nyl = g.shape[0], g.shape[1]
    above = u[:, :, k + 1] if k < nz - 1 else np.zeros((nxl, nyl))
    for i in range(nxl - 1, -1, -1):
        xi_next = u[i + 1, :, k] if i < nxl - 1 else south_edge
        prev_j = east_edge[i]
        for j in range(nyl - 1, -1, -1):
            val = g[i, j, k] + _C * (xi_next[j] + prev_j + above[i, j])
            u[i, j, k] = val
            prev_j = val


def lu_kernel(mpi, klass: str = "S", seed: int = 173205
              ) -> Generator[None, None, NasResult]:
    n, sweeps = LU_CLASSES[klass]
    p = mpi.size
    prow, pcol = factor_2d(p)
    my_r, my_c = divmod(mpi.rank, pcol)
    xlo, xhi = block_range(n, prow, my_r)
    ylo, yhi = block_range(n, pcol, my_c)
    nxl, nyl = xhi - xlo, yhi - ylo

    rng = nas_rng(seed)
    f_full = rng.standard_normal((n, n, n)) * 0.1
    f = f_full[xlo:xhi, ylo:yhi, :].copy()
    u = np.zeros_like(f)

    north = mpi.rank - pcol if my_r > 0 else -1
    south = mpi.rank + pcol if my_r < prow - 1 else -1
    west = mpi.rank - 1 if my_c > 0 else -1
    east = mpi.rank + 1 if my_c < pcol - 1 else -1

    def recv_strip(src, length, tag):
        if src < 0:
            return np.zeros(length)
        buf = np.zeros(length)
        yield from mpi.Recv(buf, source=src, tag=tag)
        return buf

    def send_strip(dst, data, tag):
        if dst >= 0:
            yield from mpi.Send(np.ascontiguousarray(data), dest=dst,
                                tag=tag)
        return None

    t0 = mpi.wtime()
    for _sweep in range(sweeps):
        # ---- forward wavefront: consume predecessor edges per plane
        for k in range(n):
            north_edge = yield from recv_strip(north, nyl, 70)
            west_edge = yield from recv_strip(west, nxl, 71)
            _forward_plane(u, f, north_edge, west_edge, k)
            yield from send_strip(south, u[-1, :, k], 70)
            yield from send_strip(east, u[:, -1, k], 71)
        g = u.copy()
        u = np.zeros_like(f)
        # ---- backward wavefront: consume successor edges
        for k in range(n - 1, -1, -1):
            south_edge = yield from recv_strip(south, nyl, 72)
            east_edge = yield from recv_strip(east, nxl, 73)
            _backward_plane(u, g, south_edge, east_edge, k, n)
            yield from send_strip(north, u[0, :, k], 72)
            yield from send_strip(west, u[:, 0, k], 73)
        f = u * 0.5 + f * 0.5  # relax toward a fixed point
        u = np.zeros_like(f)
    local = np.array([float((f * f).sum())])
    out = np.zeros(1)
    yield from mpi.Allreduce(local, out, op=SUM)
    norm = float(np.sqrt(out[0]) / n ** 1.5)
    elapsed = mpi.wtime() - t0

    ref = lu_serial_reference(klass, seed)
    verified = abs(norm - ref) <= 1e-10 * max(abs(ref), 1.0)
    return NasResult("lu", verified, norm, elapsed, iterations=sweeps)


def lu_serial_reference(klass: str = "S", seed: int = 173205) -> float:
    n, sweeps = LU_CLASSES[klass]
    rng = nas_rng(seed)
    f = rng.standard_normal((n, n, n)) * 0.1
    zeros = np.zeros(n)
    for _sweep in range(sweeps):
        u = np.zeros_like(f)
        for k in range(n):
            _forward_plane(u, f, zeros, zeros, k)
        g = u.copy()
        u = np.zeros_like(f)
        for k in range(n - 1, -1, -1):
            _backward_plane(u, g, zeros, zeros, k, n)
        f = u * 0.5 + f * 0.5
    return float(np.sqrt((f * f).sum()) / n ** 1.5)
