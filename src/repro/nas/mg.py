"""MG — Multigrid.

V-cycle multigrid on a periodic 3D Poisson problem with z-slab
decomposition and per-level halo exchanges.  MG exercises
medium-size nearest-neighbour messages (one xy-plane per exchange)
at every level of the grid hierarchy.

The parallel code is arranged to be bit-identical to the serial
reference (:func:`mg_serial_reference`): x/y derivatives use the full
local planes, z derivatives use exchanged ghost planes — so
verification is an exact (tolerance 1e-11) comparison of residual
norms.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

import numpy as np

from ..mpi.datatypes import SUM
from .common import NasResult, nas_rng

__all__ = ["mg_kernel", "mg_serial_reference", "MG_CLASSES"]

#: (grid n, v-cycles)
MG_CLASSES = {"T": (16, 2), "S": (32, 3), "W": (64, 3)}

_OMEGA = 0.8


def _make_rhs(n: int, seed: int) -> np.ndarray:
    """NAS MG charges +1/-1 at a few points; we use a smooth random
    zero-mean field for a well-posed periodic problem."""
    rng = nas_rng(seed)
    f = rng.standard_normal((n, n, n))
    return f - f.mean()


# ---------------------------------------------------------------------
# parallel pieces (z-slab, ghost planes at z index 0 and -1)
# ---------------------------------------------------------------------

def _halo(mpi, u: np.ndarray) -> Generator:
    """Fill the two ghost planes from the periodic z-neighbours."""
    p = mpi.size
    if p == 1:
        u[:, :, 0] = u[:, :, -2]
        u[:, :, -1] = u[:, :, 1]
        return None
    left = (mpi.rank - 1) % p
    right = (mpi.rank + 1) % p
    first = np.ascontiguousarray(u[:, :, 1])
    last = np.ascontiguousarray(u[:, :, -2])
    gl = np.zeros_like(first)
    gr = np.zeros_like(last)
    r1 = yield from mpi.Isend(first, dest=left, tag=60)
    r2 = yield from mpi.Isend(last, dest=right, tag=61)
    yield from mpi.Recv(gr, source=right, tag=60)
    yield from mpi.Recv(gl, source=left, tag=61)
    yield from mpi.Waitall([r1, r2])
    u[:, :, -1] = gr
    u[:, :, 0] = gl
    return None


def _apply_a(u: np.ndarray) -> np.ndarray:
    """A = 6I - shifts (periodic in x/y locally, ghosts supply z).
    Input has ghost planes; output is interior-only."""
    c = u[:, :, 1:-1]
    out = 6.0 * c
    out -= np.roll(c, 1, axis=0) + np.roll(c, -1, axis=0)
    out -= np.roll(c, 1, axis=1) + np.roll(c, -1, axis=1)
    out -= u[:, :, :-2] + u[:, :, 2:]
    return out


def _smooth(mpi, u, f) -> Generator:
    yield from _halo(mpi, u)
    r = f - _apply_a(u)
    u[:, :, 1:-1] += _OMEGA / 6.0 * r
    return None


def _residual(mpi, u, f) -> Generator:
    yield from _halo(mpi, u)
    return f - _apply_a(u)


def _restrict(r: np.ndarray) -> np.ndarray:
    """Full coarsening by 2 in every dimension (8-cell average)."""
    return 0.125 * (r[0::2, 0::2, 0::2] + r[1::2, 0::2, 0::2]
                    + r[0::2, 1::2, 0::2] + r[1::2, 1::2, 0::2]
                    + r[0::2, 0::2, 1::2] + r[1::2, 0::2, 1::2]
                    + r[0::2, 1::2, 1::2] + r[1::2, 1::2, 1::2])


def _prolong(e: np.ndarray) -> np.ndarray:
    """Piecewise-constant interpolation (adjoint of _restrict)."""
    return e.repeat(2, axis=0).repeat(2, axis=1).repeat(2, axis=2)


def _with_ghosts(interior: np.ndarray) -> np.ndarray:
    n0, n1, nzl = interior.shape
    u = np.zeros((n0, n1, nzl + 2))
    u[:, :, 1:-1] = interior
    return u


def _vcycle(mpi, u, f, n: int, nzl: int) -> Generator:
    yield from _smooth(mpi, u, f)
    if n > 4 and nzl % 2 == 0 and nzl >= 2:
        r = yield from _residual(mpi, u, f)
        rc = _restrict(r)
        ec = _with_ghosts(np.zeros_like(rc))
        yield from _vcycle(mpi, ec, rc, n // 2, nzl // 2)
        u[:, :, 1:-1] += _prolong(ec[:, :, 1:-1])
    else:
        for _ in range(4):  # coarse "solve": extra smoothing
            yield from _smooth(mpi, u, f)
    yield from _smooth(mpi, u, f)
    return None


def mg_kernel(mpi, klass: str = "S", seed: int = 577215
              ) -> Generator[None, None, NasResult]:
    n, cycles = MG_CLASSES[klass]
    p = mpi.size
    if n % p or (n // p) % 2:
        raise ValueError(f"MG needs an even z-slab (n={n}, p={p})")
    nzl = n // p
    f_full = _make_rhs(n, seed)
    f = f_full[:, :, mpi.rank * nzl:(mpi.rank + 1) * nzl].copy()
    u = _with_ghosts(np.zeros_like(f))

    t0 = mpi.wtime()
    for _c in range(cycles):
        yield from _vcycle(mpi, u, f, n, nzl)
    r = yield from _residual(mpi, u, f)
    local = np.array([float((r * r).sum())])
    out = np.zeros(1)
    yield from mpi.Allreduce(local, out, op=SUM)
    rnorm = float(np.sqrt(out[0]) / n ** 1.5)
    elapsed = mpi.wtime() - t0

    ref = mg_serial_reference(klass, seed, p)
    verified = abs(rnorm - ref) <= 1e-11 * max(abs(ref), 1.0)
    return NasResult("mg", verified, rnorm, elapsed, iterations=cycles)


# ---------------------------------------------------------------------
# serial reference (same math, pure numpy, periodic via roll)
# ---------------------------------------------------------------------

def _apply_a_serial(u):
    out = 6.0 * u
    for ax in range(3):
        out -= np.roll(u, 1, axis=ax) + np.roll(u, -1, axis=ax)
    return out


def _vcycle_serial(u, f, n, nzl):
    """Mirrors _vcycle exactly, including the parallel depth limit
    (coarsening stops when the z-slab would become odd), so the
    parallel result verifies bit-for-bit against this reference."""
    def smooth(u):
        return u + _OMEGA / 6.0 * (f - _apply_a_serial(u))

    u = smooth(u)
    if n > 4 and nzl % 2 == 0 and nzl >= 2:
        r = f - _apply_a_serial(u)
        rc = _restrict(r)
        ec = _vcycle_serial(np.zeros_like(rc), rc, n // 2, nzl // 2)
        u = u + _prolong(ec)
    else:
        for _ in range(4):
            u = smooth(u)
    return smooth(u)


def mg_serial_reference(klass: str = "S", seed: int = 577215,
                        p: int = 1) -> float:
    n, cycles = MG_CLASSES[klass]
    f = _make_rhs(n, seed)
    u = np.zeros_like(f)
    for _c in range(cycles):
        u = _vcycle_serial(u, f, n, n // p)
    r = f - _apply_a_serial(u)
    return float(np.sqrt((r * r).sum()) / n ** 1.5)
