"""NAS Parallel Benchmarks over the simulated MPI stack.

Real (scaled-down) kernels for correctness — each verified against a
serial reference — plus class A/B communication skeletons for the
paper's Fig. 16/17 application-level evaluation.
"""

from .adi import adi_kernel, adi_serial_reference
from .bt import bt_kernel, bt_serial_reference
from .cg import cg_kernel, cg_serial_reference
from .common import NasResult
from .ep import ep_kernel, ep_serial_reference
from .ft import ft_kernel, ft_serial_reference
from .is_ import is_kernel
from .lu import lu_kernel, lu_serial_reference
from .mg import mg_kernel, mg_serial_reference
from .skeleton import (CLASS_A_BENCHMARKS, CLASS_B_BENCHMARKS,
                       NAS_SKELETONS, run_skeleton)
from .sp import sp_kernel, sp_serial_reference

#: kernel registry: name -> generator function(mpi, klass=...)
KERNELS = {
    "ep": ep_kernel,
    "cg": cg_kernel,
    "mg": mg_kernel,
    "ft": ft_kernel,
    "is": is_kernel,
    "lu": lu_kernel,
    "sp": sp_kernel,
    "bt": bt_kernel,
}

__all__ = [
    "KERNELS", "NasResult", "run_skeleton", "NAS_SKELETONS",
    "CLASS_A_BENCHMARKS", "CLASS_B_BENCHMARKS",
    "ep_kernel", "cg_kernel", "mg_kernel", "ft_kernel", "is_kernel",
    "lu_kernel", "sp_kernel", "bt_kernel",
]
