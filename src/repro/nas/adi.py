"""Shared ADI (alternating-direction implicit) machinery for SP and BT.

NAS SP solves scalar pentadiagonal systems and BT block-tridiagonal
systems along each of x, y, z every timestep.  We reproduce exactly
that numerical structure on a diffusion-like model problem:

    (I + s·D_x) (I + s·D_y) (I + s·D_z) u^{n+1} = u^n

with D a second-difference operator — pentadiagonal (fourth-order
stencil) for SP, 3×3-block tridiagonal (three coupled components) for
BT.  The domain is z-slab partitioned: x and y line solves are local;
the z solves transpose the pencil via alltoall (substituting NAS's
multi-partition scheme with the same per-step traffic volume; noted
in DESIGN.md).
"""

from __future__ import annotations

from typing import Generator, Tuple

import numpy as np

from ..mpi.datatypes import SUM
from .common import NasResult, nas_rng

__all__ = ["adi_kernel", "adi_serial_reference", "ADI_CLASSES",
           "solve_banded_system", "solve_block_tridiag"]

#: (grid n, timesteps)
ADI_CLASSES = {"T": (8, 2), "S": (16, 3), "W": (32, 3)}

_SIGMA = 0.3


# ---------------------------------------------------------------------
# line solvers
# ---------------------------------------------------------------------

def penta_bands(n: int, s: float) -> np.ndarray:
    """Banded form (scipy solve_banded layout, (2,2) bands) of
    I + s * D4 with D4 the fourth-order second-difference stencil
    (-1, 16, -30, 16, -1)/12, Dirichlet ends."""
    ab = np.zeros((5, n))
    ab[0, 2:] = s * (1.0 / 12.0)       # super-super
    ab[1, 1:] = s * (-16.0 / 12.0)     # super
    ab[2, :] = 1.0 + s * (30.0 / 12.0)  # diag
    ab[3, :-1] = s * (-16.0 / 12.0)    # sub
    ab[4, :-2] = s * (1.0 / 12.0)      # sub-sub
    return ab


def solve_banded_system(ab: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve the pentadiagonal system for many right-hand sides
    (columns of ``b``) — scipy's LAPACK banded solver."""
    from scipy.linalg import solve_banded
    return solve_banded((2, 2), ab, b)


def block_tridiag_blocks(n: int, s: float
                         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Constant-coefficient 3x3 block tridiagonal operator
    I + s * (B_l, B_d, B_u): three coupled components with a
    second-difference diagonal coupling and a weak rotation between
    components (keeps the blocks non-symmetric, like BT's flux
    Jacobians)."""
    rot = np.array([[0.0, 0.1, 0.0],
                    [-0.1, 0.0, 0.1],
                    [0.0, -0.1, 0.0]])
    eye = np.eye(3)
    bd = eye + s * (2.0 * eye + rot)
    bl = -s * (eye + 0.5 * rot)
    bu = -s * (eye - 0.5 * rot)
    lower = np.broadcast_to(bl, (n, 3, 3)).copy()
    diag = np.broadcast_to(bd, (n, 3, 3)).copy()
    upper = np.broadcast_to(bu, (n, 3, 3)).copy()
    return lower, diag, upper


def solve_block_tridiag(lower, diag, upper, rhs) -> np.ndarray:
    """Batched block-Thomas.  ``rhs`` shape (n, 3, m) — m independent
    lines solved at once; blocks shape (n, 3, 3)."""
    n = rhs.shape[0]
    m = rhs.shape[2]
    cp = np.zeros((n, 3, 3))
    dp = np.zeros((n, 3, m))
    inv = np.linalg.inv(diag[0])
    cp[0] = inv @ upper[0]
    dp[0] = inv @ rhs[0]
    for i in range(1, n):
        denom = diag[i] - lower[i] @ cp[i - 1]
        inv = np.linalg.inv(denom)
        cp[i] = inv @ upper[i]
        dp[i] = inv @ (rhs[i] - lower[i] @ dp[i - 1])
    x = np.zeros_like(dp)
    x[n - 1] = dp[n - 1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] @ x[i + 1]
    return x


# ---------------------------------------------------------------------
# distributed transposes (z-slab <-> x-slab), real-valued
# ---------------------------------------------------------------------

def _transpose_fwd(mpi, local: np.ndarray, nc, nx, ny, nz):
    """(nc, nx, ny, nz/p) -> (nc, nx/p, ny, nz) via alltoall."""
    p = mpi.size
    nxl, nzl = nx // p, nz // p
    send = np.ascontiguousarray(
        local.reshape(nc, p, nxl, ny, nzl).transpose(1, 0, 2, 3, 4))
    recv = np.zeros_like(send)
    yield from mpi.Alltoall(send.reshape(-1), recv.reshape(-1))
    out = np.concatenate([recv[r] for r in range(p)], axis=3)
    return out


def _transpose_bwd(mpi, local: np.ndarray, nc, nx, ny, nz):
    """(nc, nx/p, ny, nz) -> (nc, nx, ny, nz/p)."""
    p = mpi.size
    nzl = nz // p
    send = np.ascontiguousarray(
        np.stack(np.split(local, p, axis=3)))
    recv = np.zeros_like(send)
    yield from mpi.Alltoall(send.reshape(-1), recv.reshape(-1))
    out = np.concatenate([recv[r] for r in range(p)], axis=1)
    return out


# ---------------------------------------------------------------------
# the ADI timestep
# ---------------------------------------------------------------------

def _solve_axis_scalar(u, ab, axis):
    """Scalar penta solve along ``axis`` of a 3D array."""
    moved = np.moveaxis(u, axis, 0)
    shp = moved.shape
    flat = moved.reshape(shp[0], -1)
    out = solve_banded_system(ab, flat).reshape(shp)
    return np.moveaxis(out, 0, axis)


def _solve_axis_block(u, blocks, axis):
    """Block solve along ``axis`` of a (3, nx, ny, nz) array."""
    lower, diag, upper = blocks
    moved = np.moveaxis(u, axis + 1, 1)      # (3, n, ...)
    shp = moved.shape
    flat = moved.reshape(3, shp[1], -1).transpose(1, 0, 2)  # (n, 3, m)
    sol = solve_block_tridiag(lower, diag, upper, flat)
    out = sol.transpose(1, 0, 2).reshape(shp)
    return np.moveaxis(out, 1, axis + 1)


def adi_kernel(mpi, variant: str, klass: str = "S", seed: int = 662607
               ) -> Generator[None, None, NasResult]:
    """Run the SP-style (variant="sp") or BT-style (variant="bt") ADI
    solver; distributed by z-slabs."""
    n, steps = ADI_CLASSES[klass]
    p = mpi.size
    if n % p:
        raise ValueError(f"ADI grid {n} must divide by p={p}")
    nzl = n // p
    nc = 3 if variant == "bt" else 1
    rng = nas_rng(seed)
    full = rng.standard_normal((nc, n, n, n))
    u = full[:, :, :, mpi.rank * nzl:(mpi.rank + 1) * nzl].copy()

    if variant == "sp":
        ab = penta_bands(n, _SIGMA)

        def solve(arr, axis):
            return _solve_axis_scalar(arr[0], ab, axis)[None, ...]
    else:
        blocks = block_tridiag_blocks(n, _SIGMA)

        def solve(arr, axis):
            return _solve_axis_block(arr, blocks, axis)

    t0 = mpi.wtime()
    for _step in range(steps):
        u = solve(u, 0)                      # x lines: local
        u = solve(u, 1)                      # y lines: local
        u = yield from _transpose_fwd(mpi, u, nc, n, n, n)
        u = solve(u, 2)                      # z lines: local post-transpose
        u = yield from _transpose_bwd(mpi, u, nc, n, n, n)
    local = np.array([float((u * u).sum())])
    out = np.zeros(1)
    yield from mpi.Allreduce(local, out, op=SUM)
    norm = float(np.sqrt(out[0]) / n ** 1.5)
    elapsed = mpi.wtime() - t0

    ref = adi_serial_reference(variant, klass, seed)
    verified = abs(norm - ref) <= 1e-9 * max(abs(ref), 1.0)
    return NasResult(variant, verified, norm, elapsed, iterations=steps)


def adi_serial_reference(variant: str, klass: str = "S",
                         seed: int = 662607) -> float:
    n, steps = ADI_CLASSES[klass]
    nc = 3 if variant == "bt" else 1
    rng = nas_rng(seed)
    u = rng.standard_normal((nc, n, n, n))
    if variant == "sp":
        ab = penta_bands(n, _SIGMA)
        for _step in range(steps):
            for axis in range(3):
                u = _solve_axis_scalar(u[0], ab, axis)[None, ...]
    else:
        blocks = block_tridiag_blocks(n, _SIGMA)
        for _step in range(steps):
            for axis in range(3):
                u = _solve_axis_block(u, blocks, axis)
    return float(np.sqrt((u * u).sum()) / n ** 1.5)
