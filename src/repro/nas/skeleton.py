"""NAS class A/B performance skeletons (Fig. 16/17 substrate).

Running real class A data (e.g. CG's 14000×14000 sparse system)
through a pure-Python simulator would measure the host interpreter,
not the modelled cluster.  Instead, each skeleton replays the
benchmark's *communication pattern* with class-correct message sizes
and counts through the full MPI/CH3/channel/IB stack, and advances the
simulated clock by a modelled per-iteration compute time:

    t_compute = flops_per_iteration / (per-rank flop rate)

Total operation counts are the published NPB totals (Gop), so the
reported figure is Mop/s on the same scale as the paper's Fig. 16/17.
Only *relative* differences between channel designs are meaningful —
which is exactly what the paper's application evaluation compares.

A ``sim_fraction`` of the iterations is actually simulated and the
measured time scaled up, keeping event counts tractable for the
iteration-heavy benchmarks (LU/SP/BT); the patterns are steady-state,
so this is loss-free for design comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..config import ChannelConfig, HardwareConfig
from ..mpi.runner import run_mpi

__all__ = ["NAS_SKELETONS", "run_skeleton", "SkeletonSpec",
           "CLASS_A_BENCHMARKS", "CLASS_B_BENCHMARKS"]

#: per-rank sustained flop rate of the testbed's 2.4 GHz Xeon on NPB
#: codes (~12% of peak — typical for this generation).
FLOP_RATE = 280e6

#: benchmarks plotted in Fig. 16 (class A, 4 nodes) — all eight
CLASS_A_BENCHMARKS = ["bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"]
#: Fig. 17 (class B, 8 nodes) — SP and BT need a square rank count
CLASS_B_BENCHMARKS = ["cg", "ep", "ft", "is", "lu", "mg"]


@dataclass
class SkeletonSpec:
    name: str
    #: published NPB total operation count, Gop, per class
    gops: Dict[str, float]
    #: iterations per class
    iters: Dict[str, int]
    #: grid/problem parameter per class (meaning is per-benchmark)
    size: Dict[str, int]
    #: fraction of iterations to actually simulate (rest scaled)
    sim_fraction: float
    #: builds the per-iteration communication program:
    #: f(mpi, klass, state) -> generator
    comm_iter: Callable
    #: one-time setup returning reusable buffers/state
    setup: Callable
    #: optional override of per-iteration compute seconds f(klass, p);
    #: used for memory-bound kernels whose published op counts
    #: undercount the actual work (IS counts only key-ranking ops)
    compute_time: Optional[Callable] = None


def _alloc(mpi, nbytes: int):
    return mpi.alloc(max(int(nbytes), 8), "nas.skel")


# ---------------------------------------------------------------------
# per-benchmark communication programs
# ---------------------------------------------------------------------

def _cg_setup(mpi, klass, n):
    ex = _alloc(mpi, n * 8 // mpi.size)
    red = np.zeros(1)
    return {"exchange": ex, "red": red}

def _cg_iter(mpi, klass, st):
    # one outer iteration = 25 CG inner iterations
    partner = mpi.rank ^ 1 if mpi.size > 1 else mpi.rank
    for _inner in range(25):
        out = np.zeros(1)
        yield from mpi.Allreduce(st["red"], out)     # alpha
        if partner != mpi.rank:
            yield from mpi.Sendrecv(st["exchange"], partner,
                                    st["exchange"], partner)
        out = np.zeros(1)
        yield from mpi.Allreduce(st["red"], out)     # rho
    return None


def _mg_setup(mpi, klass, n):
    planes = []
    lvl_n = n
    while lvl_n >= 4 and (lvl_n // mpi.size) >= 1:
        planes.append(_alloc(mpi, lvl_n * lvl_n * 8))
        lvl_n //= 2
    return {"planes": planes}

def _mg_iter(mpi, klass, st):
    left = (mpi.rank - 1) % mpi.size
    right = (mpi.rank + 1) % mpi.size
    # one V-cycle: ~4 halo exchanges per level down and up
    for plane in st["planes"] + st["planes"][::-1]:
        for _ in range(2):
            yield from mpi.Sendrecv(plane, right, plane, left)
    return None


def _ft_setup(mpi, klass, n):
    # total complex elements / p / p per pairwise segment, 16 B each
    nz = {"A": (256, 256, 128), "B": (512, 256, 256)}[klass]
    total = nz[0] * nz[1] * nz[2] * 16
    seg = total // (mpi.size * mpi.size)
    return {"send": _alloc(mpi, seg * mpi.size),
            "recv": _alloc(mpi, seg * mpi.size)}

def _ft_iter(mpi, klass, st):
    yield from mpi.Alltoall(st["send"], st["recv"])
    # evolution checksum
    out = np.zeros(2)
    yield from mpi.Allreduce(np.zeros(2), out)
    return None


def _is_setup(mpi, klass, n):
    total_keys = {"A": 1 << 23, "B": 1 << 25}[klass]
    seg = total_keys * 4 // (mpi.size * mpi.size)
    return {"counts": np.zeros(max(mpi.size, 1)),
            "send": _alloc(mpi, seg * mpi.size),
            "recv": _alloc(mpi, seg * mpi.size)}

def _is_iter(mpi, klass, st):
    out = np.zeros(st["counts"].size)
    yield from mpi.Allreduce(st["counts"], out)
    yield from mpi.Alltoall(st["send"], st["recv"])
    return None


def _ep_setup(mpi, klass, n):
    return {}

def _ep_iter(mpi, klass, st):
    out = np.zeros(12)
    yield from mpi.Allreduce(np.zeros(12), out)
    return None


def _lu_setup(mpi, klass, n):
    from .common import factor_2d
    prow, pcol = factor_2d(mpi.size)
    strip = (n // max(prow, pcol)) * 5 * 8
    return {"strip": _alloc(mpi, strip), "n": n,
            "prow": prow, "pcol": pcol}

def _lu_iter(mpi, klass, st):
    """Two wavefront sweeps: per k-plane, receive from the two
    predecessors, send to the two successors."""
    prow, pcol = st["prow"], st["pcol"]
    my_r, my_c = divmod(mpi.rank, pcol)
    n = st["n"]
    strip = st["strip"]
    for direction in (0, 1):   # forward, backward
        if direction == 0:
            preds = [mpi.rank - pcol if my_r > 0 else -1,
                     mpi.rank - 1 if my_c > 0 else -1]
            succs = [mpi.rank + pcol if my_r < prow - 1 else -1,
                     mpi.rank + 1 if my_c < pcol - 1 else -1]
        else:
            preds = [mpi.rank + pcol if my_r < prow - 1 else -1,
                     mpi.rank + 1 if my_c < pcol - 1 else -1]
            succs = [mpi.rank - pcol if my_r > 0 else -1,
                     mpi.rank - 1 if my_c > 0 else -1]
        for _k in range(n):
            for src in preds:
                if src >= 0:
                    yield from mpi.Recv(strip, source=src, tag=90)
            for dst in succs:
                if dst >= 0:
                    yield from mpi.Send(strip, dest=dst, tag=90)
    return None


def _adi_setup(mpi, klass, n):
    face = n * n * 5 * 8 // mpi.size
    return {"send": _alloc(mpi, face * mpi.size),
            "recv": _alloc(mpi, face * mpi.size)}

def _adi_iter(mpi, klass, st):
    # three directions; the distributed one costs two transposes
    for _ in range(2):
        yield from mpi.Alltoall(st["send"], st["recv"])
    return None


# ---------------------------------------------------------------------
# registry (published NPB total op counts, Gop)
# ---------------------------------------------------------------------

NAS_SKELETONS: Dict[str, SkeletonSpec] = {
    "cg": SkeletonSpec("cg", {"A": 1.508, "B": 54.89},
                       {"A": 15, "B": 75}, {"A": 14000, "B": 75000},
                       0.25, _cg_iter, _cg_setup),
    "mg": SkeletonSpec("mg", {"A": 3.905, "B": 18.81},
                       {"A": 4, "B": 20}, {"A": 256, "B": 256},
                       0.5, _mg_iter, _mg_setup),
    "ft": SkeletonSpec("ft", {"A": 7.14, "B": 92.2},
                       {"A": 6, "B": 20}, {"A": 256, "B": 512},
                       0.35, _ft_iter, _ft_setup),
    "is": SkeletonSpec("is", {"A": 0.0784, "B": 0.3303},
                       {"A": 10, "B": 10}, {"A": 23, "B": 25},
                       1.0, _is_iter, _is_setup,
                       # memory-bound ranking: ~25 ns per local key
                       compute_time=lambda klass, p:
                       (1 << {"A": 23, "B": 25}[klass]) / p * 25e-9),
    "ep": SkeletonSpec("ep", {"A": 26.68, "B": 106.7},
                       {"A": 1, "B": 1}, {"A": 28, "B": 30},
                       1.0, _ep_iter, _ep_setup),
    "lu": SkeletonSpec("lu", {"A": 119.28, "B": 549.54},
                       {"A": 250, "B": 250}, {"A": 64, "B": 102},
                       0.03, _lu_iter, _lu_setup),
    "sp": SkeletonSpec("sp", {"A": 102.0, "B": 447.1},
                       {"A": 400, "B": 400}, {"A": 64, "B": 102},
                       0.05, _adi_iter, _adi_setup),
    "bt": SkeletonSpec("bt", {"A": 168.3, "B": 721.5},
                       {"A": 200, "B": 200}, {"A": 64, "B": 102},
                       0.05, _adi_iter, _adi_setup),
}


def _skeleton_prog(mpi, spec: SkeletonSpec, klass: str):
    n = spec.size[klass]
    iters = spec.iters[klass]
    sim_iters = max(2, int(math.ceil(iters * spec.sim_fraction)))
    sim_iters = min(sim_iters, iters)
    if spec.compute_time is not None:
        t_comp = spec.compute_time(klass, mpi.size)
    else:
        t_comp = (spec.gops[klass] * 1e9 / iters) / (FLOP_RATE
                                                     * mpi.size)
    state = spec.setup(mpi, klass, n)
    yield from mpi.Barrier()
    t0 = mpi.wtime()
    for _i in range(sim_iters):
        yield from mpi.compute(t_comp)
        yield from spec.comm_iter(mpi, klass, state)
    yield from mpi.Barrier()
    elapsed = (mpi.wtime() - t0) * (iters / sim_iters)
    return elapsed


def run_skeleton(benchmark: str, klass: str, nprocs: int,
                 design: str = "zerocopy",
                 cfg: Optional[HardwareConfig] = None,
                 ch_cfg: Optional[ChannelConfig] = None
                 ) -> Tuple[float, float]:
    """Run one benchmark skeleton; returns (seconds, Mop/s)."""
    spec = NAS_SKELETONS[benchmark]
    results, _ = run_mpi(nprocs, _skeleton_prog, design=design, cfg=cfg,
                         ch_cfg=ch_cfg, args=(spec, klass))
    elapsed = max(results)
    mops = spec.gops[klass] * 1e3 / elapsed
    return elapsed, mops
