"""CG — Conjugate Gradient.

Estimates the largest eigenvalue of a sparse symmetric
positive-definite matrix by inverse power iteration, each step solved
with conjugate gradients.  Rows are block-partitioned; the
matrix-vector product gathers the full iterate with an allgather
(dense-vector exchange — the paper-era NPB uses a transpose exchange;
the traffic volume per iteration is the same order), and the dot
products are allreduces.  CG is latency-sensitive: many small
allreduces per iteration.
"""

from __future__ import annotations

from typing import Generator, Tuple

import numpy as np
import numpy.linalg as la

from ..mpi.datatypes import SUM
from .common import NasResult, block_range, nas_rng

__all__ = ["cg_kernel", "cg_serial_reference", "make_spd_matrix",
           "CG_CLASSES"]

#: (n, nonzeros per row, outer iterations, lambda shift)
CG_CLASSES = {
    "T": (128, 8, 4, 10.0),
    "S": (512, 10, 8, 10.0),
    "W": (2048, 11, 10, 12.0),
}


def make_spd_matrix(n: int, nnz_row: int, seed: int = 314159
                    ) -> np.ndarray:
    """Random sparse-pattern SPD matrix (dense storage — the kernels
    run at tiny scale; the *communication* is what's under test)."""
    rng = nas_rng(seed)
    a = np.zeros((n, n))
    for i in range(n):
        cols = rng.choice(n, size=nnz_row, replace=False)
        vals = rng.standard_normal(nnz_row) * 0.5
        a[i, cols] += vals
    a = (a + a.T) / 2
    # diagonal dominance => SPD
    a[np.diag_indices(n)] = np.abs(a).sum(axis=1) + 1.0
    return a


def cg_kernel(mpi, klass: str = "S", cg_iters: int = 15,
              seed: int = 314159) -> Generator[None, None, NasResult]:
    n, nnz, outer_iters, shift = CG_CLASSES[klass]
    a = make_spd_matrix(n, nnz, seed)      # every rank builds the same A
    lo, hi = block_range(n, mpi.size, mpi.rank)
    a_local = a[lo:hi, :]                  # my row block

    x = np.ones(n)
    zeta = 0.0
    t0 = mpi.wtime()

    def dot(u_local, v_local):
        local = np.array([float(u_local @ v_local)])
        out = np.zeros(1)
        yield from mpi.Allreduce(local, out, op=SUM)
        return float(out[0])

    def matvec(v_full) -> np.ndarray:
        return a_local @ v_full

    def gather_full(part_local) -> Generator:
        """Assemble the full vector from row blocks (allgatherv via
        padded allgather)."""
        blk = -(-n // mpi.size)
        padded = np.zeros(blk)
        padded[:hi - lo] = part_local
        out = np.zeros(blk * mpi.size)
        yield from mpi.Allgather(padded, out)
        full = np.zeros(n)
        for r in range(mpi.size):
            rlo, rhi = block_range(n, mpi.size, r)
            full[rlo:rhi] = out[r * blk:r * blk + (rhi - rlo)]
        return full

    for _it in range(outer_iters):
        # --- CG solve of A z = x ---
        z_local = np.zeros(hi - lo)
        r_local = x[lo:hi].copy()
        p_full = x.copy()
        rho = yield from dot(r_local, r_local)
        for _k in range(cg_iters):
            q_local = matvec(p_full)
            p_local = p_full[lo:hi]
            alpha_den = yield from dot(p_local, q_local)
            alpha = rho / alpha_den
            z_local += alpha * p_local
            r_local -= alpha * q_local
            rho_new = yield from dot(r_local, r_local)
            beta = rho_new / rho
            rho = rho_new
            p_local_new = r_local + beta * p_local
            p_full = yield from gather_full(p_local_new)
        # --- shift + normalize ---
        z_full = yield from gather_full(z_local)
        xz = yield from dot(x[lo:hi], z_local)
        zz = yield from dot(z_local, z_local)
        zeta = shift + 1.0 / xz
        x = z_full / np.sqrt(zz)

    elapsed = mpi.wtime() - t0
    ref = cg_serial_reference(klass, cg_iters, seed)
    verified = abs(zeta - ref) <= 1e-8 * max(abs(ref), 1.0)
    return NasResult("cg", verified, zeta, elapsed,
                     iterations=outer_iters)


def cg_serial_reference(klass: str = "S", cg_iters: int = 15,
                        seed: int = 314159) -> float:
    """Serial replica of the same algorithm (numpy only)."""
    n, nnz, outer_iters, shift = CG_CLASSES[klass]
    a = make_spd_matrix(n, nnz, seed)
    x = np.ones(n)
    zeta = 0.0
    for _it in range(outer_iters):
        z = np.zeros(n)
        r = x.copy()
        p = x.copy()
        rho = r @ r
        for _k in range(cg_iters):
            q = a @ p
            alpha = rho / (p @ q)
            z += alpha * p
            r -= alpha * q
            rho_new = r @ r
            beta = rho_new / rho
            rho = rho_new
            p = r + beta * p
        zeta = shift + 1.0 / (x @ z)
        x = z / la.norm(z)
    return zeta
