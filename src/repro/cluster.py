"""Cluster bring-up: nodes, HCAs, the switch, and rank launching.

A :class:`Cluster` owns one simulator, one fluid network, one fabric,
and N nodes (memory + memory bus + CPUs + HCA).  :func:`build_cluster`
is the one-stop constructor used by tests, examples and benchmarks.

Rank programs are generator functions ``prog(rank_ctx, *args)``; the
MPI layer (see :mod:`repro.mpi`) provides the high-level runner
:func:`repro.mpi.run_mpi` on top of this module.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Generator, List, Optional

from .config import PAGE_SIZE, HardwareConfig
from .faults import FaultPlan, FaultState
from .hw.cpu import Cpu
from .hw.membus import MemBus
from .hw.memory import Buffer, NodeMemory
from .ib.fabric import Fabric
from .ib.hca import Hca, QueuePair
from .ib.verbs import VapiContext
from .obs import NULL_OBS, Observability
from .sim.engine import Process, Simulator
from .sim.fluid import FluidNetwork

__all__ = ["Node", "Cluster", "build_cluster"]


class Node:
    """One cluster node: memory, memory bus, CPUs, one HCA."""

    def __init__(self, cluster: "Cluster", node_id: int, ncpus: int = 2):
        self.cluster = cluster
        self.node_id = node_id
        sim, net, cfg = cluster.sim, cluster.net, cluster.cfg
        self.mem = NodeMemory(node_id)
        self.membus = MemBus(sim, net, cfg, node_id)
        self.cpus = [Cpu(sim, node_id, i) for i in range(ncpus)]
        self.hca = Hca(sim, net, cluster.fabric, cfg, node_id,
                       self.mem, self.membus, faults=cluster.faults,
                       obs=cluster.obs)
        #: scratch space for channel designs that share state across
        #: the co-located ranks of one node (e.g. ``mux`` pools)
        self.channel_state: Dict = {}

    def vapi(self, cpu_index: int = 0) -> VapiContext:
        """Open a VAPI context bound to one of this node's CPUs."""
        return VapiContext(self.hca, self.cpus[cpu_index])

    def alloc(self, nbytes: int, name: str = "") -> Buffer:
        return Buffer.alloc(self.mem, nbytes, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id}>"


class Cluster:
    """The whole testbed."""

    def __init__(self, nnodes: int, cfg: Optional[HardwareConfig] = None,
                 ncpus_per_node: int = 2,
                 faults: Optional[FaultPlan] = None,
                 obs: Optional[Observability] = None,
                 tie_seed: Optional[int] = None):
        if nnodes < 1:
            raise ValueError("need at least one node")
        self.cfg = HardwareConfig() if cfg is None else cfg
        #: ``tie_seed`` selects the engine's same-timestamp tie-break
        #: policy (None = insertion order, bit-for-bit the historical
        #: schedule; see :class:`repro.sim.engine.Simulator`).
        self.sim = Simulator(tie_seed=tie_seed)
        self.net = FluidNetwork(self.sim)
        self.fabric = Fabric(self.sim, self.net, self.cfg)
        #: cluster-wide fault-injection state, shared by every HCA
        #: (``faults`` may be a FaultPlan or a prebuilt FaultState).
        self.faults = (faults if isinstance(faults, FaultState)
                       else FaultState(faults))
        #: cluster-wide observability hub (metrics + timeline); the
        #: default NULL_OBS drops everything at zero simulated cost.
        self.obs = obs if obs is not None else NULL_OBS
        self.nodes: List[Node] = [
            Node(self, i, ncpus_per_node) for i in range(nnodes)
        ]
        #: optional RDMA shadow-memory sanitizer (repro.analysis.shadow);
        #: None = zero overhead, identical event order either way.
        self.shadow = None
        if os.environ.get("REPRO_SHADOW") not in (None, "", "0"):
            from .analysis.shadow import install_shadow
            install_shadow(self, strict=os.environ.get(
                "REPRO_SHADOW_STRICT", "1") not in ("0", ""))

    def __len__(self) -> int:
        return len(self.nodes)

    def connect_pair(self, a: int, b: int) -> tuple:
        """Create and connect one QP on each of nodes ``a`` and ``b``
        (each with its own send/recv CQ).  Returns (qp_a, qp_b)."""
        na, nb = self.nodes[a], self.nodes[b]
        cq_a = na.hca.create_cq()
        cq_b = nb.hca.create_cq()
        qp_a = na.hca.create_qp(cq_a)
        qp_b = nb.hca.create_qp(cq_b)
        qp_a.connect(qp_b)
        return qp_a, qp_b

    def spawn(self, gen: Generator, name: str = "") -> Process:
        return self.sim.spawn(gen, name)

    def run(self, until: Optional[float] = None) -> float:
        return self.sim.run(until)

    # -- memory-footprint accounting (the quantities the connection-
    # -- scaling designs exist to shrink; gated by BENCH_memscale) ------
    def pinned_bytes(self) -> int:
        """Registered (pinned) memory across all nodes, in bytes (page
        granularity, like the OS pin accounting)."""
        return sum(node.hca.pd.pinned_pages for node in self.nodes) \
            * PAGE_SIZE

    def live_qps(self) -> int:
        """Queue pairs created across all nodes."""
        return sum(node.hca.stats.qps_created for node in self.nodes)


def build_cluster(nnodes: int, cfg: Optional[HardwareConfig] = None,
                  faults: Optional[FaultPlan] = None,
                  obs: Optional[Observability] = None, **kw) -> Cluster:
    """Construct a cluster modelled on the paper's testbed (§4.1).

    ``faults`` (a :class:`repro.faults.FaultPlan`) makes the fabric
    imperfect in a deterministic, seed-driven way; omitted or empty,
    the cluster behaves exactly as before.  ``obs`` (a
    :class:`repro.obs.Observability`) records per-layer counters and
    timeline spans without perturbing simulated time.  ``tie_seed``
    (an int) enables the seeded schedule-perturbation tie-break for
    same-timestamp events; omitted, the schedule is bit-for-bit the
    historical insertion order."""
    return Cluster(nnodes, cfg, faults=faults, obs=obs, **kw)
