"""Kernel networking models (the non-RDMA comparison path)."""

from .ipoib import TcpConnection, TcpParams, TcpStack

__all__ = ["TcpStack", "TcpConnection", "TcpParams"]
