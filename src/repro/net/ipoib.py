"""A kernel TCP stack over IP-over-InfiniBand.

The paper's Fig. 1 lists a TCP-socket channel alongside the RDMA
designs; the gap between kernel TCP and user-level RDMA is the
motivation for the whole line of work.  This module models the
era-accurate kernel data path over the same simulated fabric:

* **send**: syscall entry, copy user → socket buffer (bus-charged),
  MSS segmentation, per-segment IP/TCP header processing, NIC DMA over
  the wire;
* **receive**: per-segment interrupt (mitigated by coalescing when
  back-to-back segments arrive), kernel protocol processing, and a
  second copy socket buffer → user at ``recv`` time;
* **flow control**: a fixed receive-window socket buffer; the sender
  blocks when it fills and resumes as the receiver drains it (ACKs
  carry a wire latency).

The fabric is lossless, so no retransmission/congestion machinery is
modelled — the relevant costs are the two copies, the syscalls and the
interrupts, which is exactly what RDMA eliminates.

Typical resulting numbers (cf. the paper-era MPICH2/TCP on IPoIB):
~45 µs small-message latency, ~180–250 MB/s peak bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, Optional, Tuple

from ..config import US, HardwareConfig
from ..sim.engine import Simulator
from ..sim.sync import Gate, Resource

__all__ = ["TcpParams", "TcpStack", "TcpConnection"]


class TcpParams:
    """Kernel-stack cost constants (era-accurate defaults for a 2.4.x
    Linux kernel on the testbed's Xeons)."""

    #: syscall entry/exit (send or recv)
    syscall_cpu = 1.6 * US
    #: per-segment TCP/IP header build/verify
    segment_cpu = 0.9 * US
    #: interrupt + softirq entry on the first segment of a burst
    interrupt_latency = 14.0 * US
    #: segments arriving within this window ride the same interrupt
    coalesce_window = 30.0 * US
    #: MSS over IPoIB (2044-byte IB MTU minus IP/TCP headers)
    mss = 1992
    #: socket buffer / receive window per direction
    sock_buf = 64 * 1024
    #: IPoIB throughput cap: the kernel path cannot keep the 4X link
    #: busy (per-byte checksum + segment handling); expressed as a
    #: per-byte CPU cost on the receiver's protocol processing.
    per_byte_cpu = 1.0 / (320e6)  # ~320 MB/s protocol ceiling


class TcpStack:
    """Per-node kernel stack: owns the node's CPU/bus charging."""

    def __init__(self, sim: Simulator, node, cfg: HardwareConfig,
                 params: Optional[TcpParams] = None):
        self.sim = sim
        self.node = node
        self.cfg = cfg
        self.p = TcpParams() if params is None else params
        #: last time an rx interrupt fired (for coalescing)
        self._last_irq = -1.0
        #: the softirq context is serial per CPU: inbound protocol
        #: processing of concurrent segments queues here (this is the
        #: kernel path's throughput ceiling)
        self.rx_softirq = Resource(sim, capacity=1)

    def rx_interrupt_cost(self) -> float:
        """Interrupt latency unless coalesced with a recent one."""
        now = self.sim.now
        if now - self._last_irq <= self.p.coalesce_window:
            return 0.0
        self._last_irq = now
        return self.p.interrupt_latency


class TcpConnection:
    """One direction pair of a TCP connection between two nodes.

    ``send(nbytes)``/``recv(max)`` move modelled bytes; the payload
    content is carried out-of-band by the channel layer (the kernel
    path's costs don't depend on values)."""

    def __init__(self, a_stack: TcpStack, b_stack: TcpStack):
        self.ends = {0: a_stack, 1: b_stack}
        sim = a_stack.sim
        #: per-direction state: bytes queued at receiver, in-flight
        self._rxq = {0: deque(), 1: deque()}   # (nbytes, arrival_time)
        self._rx_bytes = {0: 0, 1: 0}
        self._inflight = {0: 0, 1: 0}
        self._gates = {0: Gate(sim), 1: Gate(sim)}
        self._credit_gates = {0: Gate(sim), 1: Gate(sim)}

    def _fabric_route(self, src_stack: TcpStack, dst_stack: TcpStack):
        src = src_stack.node
        dst = dst_stack.node
        cluster = src.cluster
        route = [(src.membus.bus, 1.0)]
        route += cluster.fabric.path(src.node_id, dst.node_id)
        route += [(dst.membus.bus, 1.0)]
        return route, cluster.fabric.latency(src.node_id, dst.node_id), \
            cluster.net

    def window_free(self, direction: int) -> int:
        p = self.ends[0].p
        used = self._rx_bytes[direction] + self._inflight[direction]
        return max(0, p.sock_buf - used)

    def send(self, direction: int, nbytes: int) -> Generator:
        """Kernel send path for ``nbytes`` (the caller limits it to
        ``window_free``).  Returns when the bytes are handed to the
        NIC (socket semantics: the send syscall returns after the
        copy into the socket buffer)."""
        src = self.ends[direction]
        dst = self.ends[1 - direction]
        p = src.p
        sim = src.sim
        # syscall + copy user -> socket buffer (2 bus-bytes per byte;
        # charged as a raw bus transfer — no scratch storage needed)
        yield from src.node.cpus[0].work(p.syscall_cpu)
        route0 = [(src.node.membus.bus, 2.0)]
        yield src.node.cluster.net.transfer(
            nbytes, route0, label=f"tcp.txcopy[{src.node.node_id}]")
        self._inflight[direction] += nbytes
        # segmentation + wire, asynchronously (NIC + softirq context)
        sim.spawn(self._transmit(direction, nbytes),
                  name="tcp.transmit", daemon=False)
        return nbytes

    def _transmit(self, direction: int, nbytes: int) -> Generator:
        src = self.ends[direction]
        dst = self.ends[1 - direction]
        p = src.p
        sim = src.sim
        nseg = max(1, -(-nbytes // p.mss))
        yield from src.node.cpus[0].work(p.segment_cpu * nseg)
        route, latency, net = self._fabric_route(src, dst)
        yield net.transfer(nbytes, route,
                           label=f"tcp[{src.node.node_id}->"
                                 f"{dst.node.node_id}]")
        yield sim.timeout(latency)
        # receiver side: interrupt + serialized softirq protocol
        # processing (the kernel path's ceiling)
        yield dst.rx_softirq.acquire()
        try:
            irq = dst.rx_interrupt_cost()
            if irq:
                yield sim.timeout(irq)
            yield from dst.node.cpus[-1].work(
                p.segment_cpu * nseg + p.per_byte_cpu * nbytes)
        finally:
            dst.rx_softirq.release()
        self._inflight[direction] -= nbytes
        self._rxq[direction].append(nbytes)
        self._rx_bytes[direction] += nbytes
        self._gates[direction].open()
        return None

    def available(self, direction: int) -> int:
        return self._rx_bytes[direction]

    def recv(self, direction: int, max_bytes: int) -> Generator:
        """Kernel receive path: syscall + copy socket buffer -> user.
        Returns bytes consumed (0 if none are queued)."""
        dst = self.ends[1 - direction]
        p = dst.p
        n = min(self._rx_bytes[direction], max_bytes)
        if n <= 0:
            return 0
        yield from dst.node.cpus[-1].work(p.syscall_cpu)
        route = [(dst.node.membus.bus, 2.0)]
        yield dst.node.cluster.net.transfer(
            n, route, label=f"tcp.rxcopy[{dst.node.node_id}]")
        self._rx_bytes[direction] -= n
        # window update (ACK) reaches the sender after a wire delay
        src = self.ends[direction]
        _route, latency, _net = self._fabric_route(dst, src)
        dst.sim.call_in(latency + 2e-6,
                        self._credit_gates[direction].open)
        return n

    def wait_rx(self, direction: int):
        return self._gates[direction].wait()

    def wait_credit(self, direction: int):
        return self._credit_gates[direction].wait()
