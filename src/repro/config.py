"""Hardware calibration constants for the simulated testbed.

The defaults model the paper's testbed (§4.1): SuperMicro SUPER P4DL6
nodes with dual 2.4 GHz Xeons (512 KB L2, 400 MHz FSB), Mellanox
InfiniHost MT23108 4X HCAs on PCI-X 64/133, and an InfiniScale
MT43132 switch.

Every constant is a *mechanistic* cost (per-operation CPU time, HCA
processing time, wire/bus capacity) — none encodes a paper result
directly.  The paper's headline numbers (5.9 µs / 870 MB/s raw,
18.6 µs / 230 MB/s basic, 7.4 µs piggyback, >500 MB/s pipeline,
7.6 µs / 857 MB/s zero-copy) emerge from the protocol implementations
charging these costs.

Units: seconds and bytes/second.  ``MB`` follows the paper's
convention of 1e6 bytes.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass, field

__all__ = ["HardwareConfig", "ChannelConfig", "KB", "MB", "US",
           "PAGE_SIZE", "deprecated_positional"]

KB = 1024
MB = 1_000_000  # the paper's MB is 10^6 bytes
US = 1e-6
PAGE_SIZE = 4096


def deprecated_positional(cls):
    """Class decorator: accept the dataclass's fields positionally for
    one more release, emitting a :class:`DeprecationWarning`.

    The config dataclasses are declared ``kw_only`` — call sites must
    name every field — but code written against the old positional
    signatures keeps working through this shim (in declaration order,
    exactly as before)."""
    names = [f.name for f in dataclasses.fields(cls)]
    orig_init = cls.__init__

    def __init__(self, *args, **kw):
        if args:
            warnings.warn(
                f"positional arguments to {cls.__name__} are "
                f"deprecated; pass fields by keyword "
                f"({', '.join(names[:3])}, ...)",
                DeprecationWarning, stacklevel=2)
            if len(args) > len(names):
                raise TypeError(
                    f"{cls.__name__} takes at most {len(names)} "
                    f"arguments ({len(args)} given)")
            for name, val in zip(names, args):
                if name in kw:
                    raise TypeError(
                        f"{cls.__name__} got multiple values for "
                        f"argument {name!r}")
                kw[name] = val
        orig_init(self, **kw)

    __init__.__wrapped__ = orig_init
    cls.__init__ = __init__
    return cls


def _coerce_field(f: dataclasses.Field, raw: str):
    """Parse a string (environment) value into a config field's type."""
    by_name = {"bool": bool, "int": int, "float": float, "str": str}
    if isinstance(f.type, type):
        kind = f.type
    else:  # ``from __future__ import annotations``: types are strings
        kind = by_name.get(f.type, type(f.default))
    if kind is bool:
        low = raw.strip().lower()
        if low in ("1", "true", "yes", "on"):
            return True
        if low in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"cannot parse {raw!r} as a boolean for "
                         f"{f.name}")
    if kind is int:
        return int(raw, 0)
    if kind is float:
        return float(raw)
    return raw


class _ConfigMixin:
    """``replace`` / ``from_dict`` / ``from_env`` shared by the config
    dataclasses."""

    def replace(self, **kw):
        """Return a copy with some fields overridden."""
        return dataclasses.replace(self, **kw)

    @classmethod
    def from_dict(cls, data):
        """Build a config from a mapping of field names; unknown keys
        raise ``TypeError`` (catching typos beats ignoring them)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise TypeError(
                f"{cls.__name__}.from_dict: unknown fields "
                f"{sorted(unknown)}; valid fields are {sorted(known)}")
        return cls(**data)

    @classmethod
    def from_env(cls, prefix=None, env=None):
        """Build a config from environment variables.

        Each field ``foo_bar`` is read from ``<PREFIX>FOO_BAR`` when
        set (default prefix ``REPRO_<CLASSNAME>_``, e.g.
        ``REPRO_CHANNELCONFIG_RING_SIZE=65536``); unset fields keep
        their defaults.  Pass ``env`` (a mapping) to read from
        something other than ``os.environ``."""
        if prefix is None:
            prefix = f"REPRO_{cls.__name__.upper()}_"
        if env is None:
            env = os.environ
        kw = {}
        for f in dataclasses.fields(cls):
            raw = env.get(prefix + f.name.upper())
            if raw is not None:
                kw[f.name] = _coerce_field(f, raw)
        return cls(**kw)


@deprecated_positional
@dataclass(frozen=True, kw_only=True)
class HardwareConfig(_ConfigMixin):
    """Calibrated testbed model.  Instances are immutable; derive
    variants with :meth:`replace`."""

    # ------------------------------------------------------------------
    # InfiniBand 4X link + switch
    # ------------------------------------------------------------------
    #: payload capacity of one link direction after 8b/10b coding and
    #: packet headers (4X signal rate 10 Gb/s -> 1 GB/s data, minus
    #: header overhead at 2 KB MTU; PCI-X keeps the end-to-end peak
    #: slightly lower still, see pci_dma_bandwidth).
    link_bandwidth: float = 952 * MB
    #: one-way propagation + switch crossing (cut-through).
    wire_latency: float = 0.45 * US
    #: IB MTU (used by the transport for segmentation bookkeeping).
    mtu: int = 2048

    # ------------------------------------------------------------------
    # HCA (Mellanox InfiniHost MT23108 on PCI-X 64/133)
    # ------------------------------------------------------------------
    #: CPU cost to build + post one WQE and ring the doorbell.
    post_wqe_cpu: float = 0.25 * US
    #: sender-side HCA time to fetch and launch one WQE.
    hca_send_processing: float = 1.45 * US
    #: receiver-side HCA time to place an inbound message/packet.
    hca_recv_processing: float = 1.55 * US
    #: extra HCA turnaround at the *responder* for each RDMA read
    #: (the InfiniHost read engine serializes responses; this is why
    #: raw RDMA read trails RDMA write for mid-size messages, Fig. 15).
    hca_read_response: float = 3.6 * US
    #: maximum outstanding RDMA reads per QP (IB "responder resources").
    max_outstanding_reads: int = 4
    #: CPU cost of one CQ poll that finds a completion.
    cq_poll_cpu: float = 0.30 * US
    #: mean extra delay before a polling loop notices new data
    #: (poll granularity / PCI read of the CQE).
    poll_detect_latency: float = 0.55 * US
    #: DMA engine bandwidth over PCI-X 64/133 (theoretical 1066 MB/s,
    #: practical ~880 MB/s) — this, not the link, bounds end-to-end
    #: peak bandwidth at ~870 MB/s.
    pci_dma_bandwidth: float = 872 * MB
    #: fixed latency of one PCI-X crossing (DMA setup + first data);
    #: paid once on the sending side (data fetch) and once on the
    #: receiving side (data placement).
    pci_latency: float = 0.65 * US

    # ------------------------------------------------------------------
    # RC transport recovery (active only under fault injection — see
    # repro.faults; the no-fault path never consults these)
    # ------------------------------------------------------------------
    #: initial ack timeout before the first retransmission.
    rc_timeout: float = 60 * US
    #: extra timeout allowance per payload byte — covers the data
    #: drain (and, for reads, the responder turnaround + response
    #: drain) of large messages at well below nominal link bandwidth,
    #: so congestion alone cannot exhaust the retry budget.
    rc_timeout_per_byte: float = 5e-9
    #: exponential backoff factor applied to the timeout per retry.
    rc_retry_backoff: float = 2.0
    #: bounded transport retry count (IB "retry_cnt"): after this many
    #: retransmissions the QP enters the error state and the WQE
    #: completes with ``WcStatus.RETRY_EXC_ERR``.
    rc_retry_cnt: int = 7

    # ------------------------------------------------------------------
    # Host memory system (400 MHz FSB Xeon, 512 KB L2)
    # ------------------------------------------------------------------
    #: total memory-bus capacity in bus-bytes/s.  A memcpy consumes
    #: 2 bus-bytes per payload byte (read + write) when the source is
    #: cache-resident, 3 when it misses (read fill + write-allocate +
    #: write-back) — giving the paper's "<800 MB/s" large-copy number
    #: and the ~530 MB/s pipelined-design plateau.
    membus_bandwidth: float = 1600 * MB
    #: L2 cache size; working sets beyond this pay the 3x copy cost.
    l2_cache_size: int = 512 * KB
    #: fixed per-memcpy-call CPU cost.
    memcpy_call_overhead: float = 0.06 * US
    #: bus-bytes consumed per payload byte, cache-resident copy.
    memcpy_cost_cached: float = 2.0
    #: bus-bytes consumed per payload byte, cache-missing copy.
    memcpy_cost_uncached: float = 3.0
    #: bus-bytes consumed per payload byte of HCA DMA.
    dma_bus_cost: float = 1.0

    # ------------------------------------------------------------------
    # Memory registration (VAPI pin-down)
    # ------------------------------------------------------------------
    #: fixed cost of VAPI register_mr (syscall + HCA table update).
    reg_base_cost: float = 55 * US
    #: additional cost per pinned page.
    reg_per_page_cost: float = 0.18 * US
    #: fixed cost of deregistration.
    dereg_base_cost: float = 30 * US
    #: additional deregistration cost per page.
    dereg_per_page_cost: float = 0.05 * US

    # ------------------------------------------------------------------
    # CPU / software
    # ------------------------------------------------------------------
    #: generic per-MPI-call software overhead (argument checking,
    #: request bookkeeping) charged once per MPI-level call.
    mpi_call_overhead: float = 0.30 * US
    #: per-packet CH3 header handling cost.
    ch3_packet_overhead: float = 0.20 * US
    #: per-ring-chunk software cost in the channel (header build,
    #: flag checks, bookkeeping).
    chunk_overhead_cpu: float = 0.20 * US
    #: cost of a registration-cache lookup (hash + compare).
    regcache_lookup_cost: float = 0.15 * US
    #: extra per-call software cost of the zero-copy design's
    #: threshold check and operation state machine (§5 reports it as
    #: the 7.4 -> 7.6 us small-message latency increase).
    zerocopy_check_cpu: float = 0.2 * US

    # -- derived helpers -------------------------------------------------
    def memcpy_cost_per_byte(self, working_set: int) -> float:
        """Bus-bytes per payload byte for a copy whose working set is
        ``working_set`` bytes (source + destination footprint)."""
        if working_set <= self.l2_cache_size:
            return self.memcpy_cost_cached
        return self.memcpy_cost_uncached

    def registration_cost(self, nbytes: int) -> float:
        """Time to register ``nbytes`` (page-granular pinning)."""
        pages = max(1, -(-int(nbytes) // PAGE_SIZE))
        return self.reg_base_cost + pages * self.reg_per_page_cost

    def deregistration_cost(self, nbytes: int) -> float:
        pages = max(1, -(-int(nbytes) // PAGE_SIZE))
        return self.dereg_base_cost + pages * self.dereg_per_page_cost


@deprecated_positional
@dataclass(frozen=True, kw_only=True)
class ChannelConfig(_ConfigMixin):
    """Tunables of the RDMA Channel designs (§4–§5).

    Defaults follow the paper's chosen operating point: 16 KB chunks
    (Fig. 9), zero-copy for messages past 32 KB, tail-pointer updates
    delayed until free space drops below a quarter of the ring.
    """

    #: bytes of ring buffer per connection direction.
    ring_size: int = 128 * KB
    #: fixed chunk size the ring is divided into (§4.3: "we divide the
    #: shared buffer into fixed-sized chunks"); also the pipeline unit.
    chunk_size: int = 16 * KB
    #: messages >= this go through the zero-copy path (§5).
    zerocopy_threshold: int = 32 * KB
    #: receiver sends an explicit tail update once free space is below
    #: this fraction of the ring (§4.3 delayed pointer updates).
    tail_update_fraction: float = 0.25
    #: enable the registration (pin-down) cache (§5).
    registration_cache: bool = True
    #: max number of cached registrations before LRU eviction.
    regcache_capacity: int = 64
    #: CH3 rendezvous threshold for the CH3-level design (§6).
    ch3_rndv_threshold: int = 32 * KB
    # -- srq/mux connection-scaling designs (post-paper; see
    # docs/DESIGN.md §"Connection scaling") ---------------------------
    #: receive buffers in the per-rank shared pool (SRQ designs).  The
    #: pool is shared by *all* peers, so pinned receive memory is
    #: srq_pool_slots * srq_slot_size regardless of world size.
    srq_pool_slots: int = 64
    #: bytes per shared receive buffer, including the 16-byte header.
    srq_slot_size: int = 8 * KB
    #: per-peer send window in messages — at most this many SENDs to
    #: one peer may be outstanding without a credit return, bounding
    #: any single peer's share of the shared pool.
    srq_credits: int = 8
    #: bounded QP pool per node pair in the multiplexed ("mux")
    #: design; peer flows hash onto the pool deterministically.
    qp_pool_size: int = 4

    def __post_init__(self):
        if self.ring_size % self.chunk_size != 0:
            raise ValueError("ring_size must be a multiple of chunk_size")
        if self.chunk_size < 256:
            raise ValueError("chunk_size too small to hold packet headers")
        if not (0.0 < self.tail_update_fraction < 1.0):
            raise ValueError("tail_update_fraction must be in (0, 1)")
        if self.srq_slot_size < 256:
            raise ValueError("srq_slot_size too small to hold headers")
        if self.srq_pool_slots < 2:
            raise ValueError("srq pool needs at least 2 slots")
        if self.srq_credits < 1:
            raise ValueError("srq_credits must be >= 1")
        if not (1 <= self.srq_credits <= self.srq_pool_slots):
            raise ValueError("srq_credits cannot exceed srq_pool_slots")
        if self.qp_pool_size < 1:
            raise ValueError("qp_pool_size must be >= 1")
