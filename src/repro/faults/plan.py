"""Deterministic, seed-driven fault injection.

The simulator's fabric is perfect by default; this module is how tests
make it imperfect in a *reproducible* way.  A :class:`FaultPlan` is an
immutable description of what should go wrong — per-link drop /
corrupt / delay probabilities, scheduled link-down windows, and
HCA-level injections (registration failures, forced completion
errors).  A :class:`FaultState` is the runtime companion one cluster
owns: it draws verdicts from per-link ``random.Random`` streams seeded
from ``(plan.seed, src, dst)``, so two runs with the same plan see the
*identical* fault sequence, and counts everything it did in
:class:`FaultStats`.

Design rule: with an empty plan every query short-circuits before
touching an RNG and injects nothing, so the no-fault configuration
takes exactly the legacy code paths — the benchmark figures are
bit-for-bit unchanged (guarded by ``tests/test_fault_injection.py``).

The RC-transport recovery machinery that *reacts* to these faults
(PSNs, ack/timeout retransmission, bounded retry, CRC checks) lives in
:mod:`repro.ib.hca`; the knobs controlling it (``rc_timeout``,
``rc_retry_cnt``, ...) are part of :class:`repro.config.HardwareConfig`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["LinkFaults", "FaultPlan", "FaultState", "FaultStats",
           "OK", "DROP", "CORRUPT", "DELAY"]

# packet verdicts returned by FaultState.packet_verdict
OK = "ok"
DROP = "drop"
CORRUPT = "corrupt"
DELAY = "delay"


@dataclass(frozen=True)
class LinkFaults:
    """Fault configuration of one directed link ``src -> dst``.

    Each packet (data, ack, read request/response, atomic exchange leg)
    traversing the link draws one uniform sample; the sub-ranges
    ``[0, drop)``, ``[drop, drop+corrupt)`` and
    ``[drop+corrupt, drop+corrupt+delay)`` select the fault.  ``down``
    windows drop *everything* scheduled inside ``[start, end)``
    regardless of the rates (a cable pull / switch reboot).
    """

    #: probability a packet vanishes on the wire.
    drop_rate: float = 0.0
    #: probability a packet arrives with a flipped byte (the responder's
    #: CRC check discards it, so it behaves like a detected-late drop).
    corrupt_rate: float = 0.0
    #: probability a packet is held up by ``delay_time`` extra seconds.
    delay_rate: float = 0.0
    #: extra one-way latency applied to delayed packets.
    delay_time: float = 20e-6
    #: scheduled outages: ((start, end), ...) in simulated seconds.
    down: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self):
        for name in ("drop_rate", "corrupt_rate", "delay_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.drop_rate + self.corrupt_rate + self.delay_rate > 1.0:
            raise ValueError("drop + corrupt + delay rates exceed 1")
        if self.delay_time < 0:
            raise ValueError("delay_time must be >= 0")
        object.__setattr__(self, "down",
                           tuple((float(s), float(e)) for s, e in self.down))
        for s, e in self.down:
            if e <= s:
                raise ValueError(f"empty down window ({s}, {e})")

    @property
    def active(self) -> bool:
        return bool(self.drop_rate or self.corrupt_rate
                    or self.delay_rate or self.down)

    def to_dict(self) -> dict:
        return {"drop_rate": self.drop_rate,
                "corrupt_rate": self.corrupt_rate,
                "delay_rate": self.delay_rate,
                "delay_time": self.delay_time,
                "down": [list(w) for w in self.down]}

    @classmethod
    def from_dict(cls, d: dict) -> "LinkFaults":
        return cls(drop_rate=d.get("drop_rate", 0.0),
                   corrupt_rate=d.get("corrupt_rate", 0.0),
                   delay_rate=d.get("delay_rate", 0.0),
                   delay_time=d.get("delay_time", 20e-6),
                   down=tuple(tuple(w) for w in d.get("down", ())))


@dataclass(frozen=True)
class FaultPlan:
    """Immutable description of every fault a run should experience."""

    #: master seed for the per-link RNG streams.
    seed: int = 0
    #: faults applied to any inter-node link without an explicit entry.
    default_link: LinkFaults = LinkFaults()
    #: per-directed-link overrides: {(src_node, dst_node): LinkFaults}.
    links: Mapping[Tuple[int, int], LinkFaults] = field(
        default_factory=dict)
    #: {node_id: N} — the first N verbs-layer ``reg_mr`` calls on that
    #: node fail with :class:`repro.ib.types.RegistrationError` (the
    #: pin-down ran out of lockable pages).
    reg_failures: Mapping[int, int] = field(default_factory=dict)
    #: {node_id: (ordinals...)} — the k-th send WQE processed by that
    #: node's HCA (0-based, counted across its QPs) completes with
    #: ``WcStatus.RETRY_EXC_ERR`` and puts its QP in error state.
    wc_errors: Mapping[int, Sequence[int]] = field(default_factory=dict)

    @property
    def transport_enabled(self) -> bool:
        """Any link-level faults configured (switches the HCA onto the
        retransmitting RC path)."""
        # lint: allow(falsy-or-default, boolean-valued result)
        return self.default_link.active or any(
            lf.active for lf in self.links.values())

    @property
    def enabled(self) -> bool:
        # lint: allow(falsy-or-default, boolean-valued result)
        return (self.transport_enabled or bool(self.reg_failures)
                or bool(self.wc_errors))

    # -- JSON (replay files of the conformance harness) ----------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "default_link": self.default_link.to_dict(),
            "links": {f"{s}->{d}": lf.to_dict()
                      for (s, d), lf in self.links.items()},
            "reg_failures": {str(n): k
                             for n, k in self.reg_failures.items()},
            "wc_errors": {str(n): list(seq)
                          for n, seq in self.wc_errors.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        links = {}
        for key, lf in d.get("links", {}).items():
            s, _, t = key.partition("->")
            links[(int(s), int(t))] = LinkFaults.from_dict(lf)
        return cls(
            seed=d.get("seed", 0),
            default_link=LinkFaults.from_dict(
                d.get("default_link", {})),
            links=links,
            reg_failures={int(n): k for n, k
                          in d.get("reg_failures", {}).items()},
            wc_errors={int(n): tuple(seq) for n, seq
                       in d.get("wc_errors", {}).items()},
        )


class FaultStats:
    """Counters of everything the fault machinery did in one run."""

    def __init__(self) -> None:
        self.dropped = 0            # packets dropped (incl. down windows)
        self.link_down_drops = 0    # subset of dropped: down windows
        self.corrupted = 0          # packets corrupted in transit
        self.crc_detected = 0       # corruptions caught by the CRC check
        self.delayed = 0            # packets given extra latency
        self.retransmissions = 0    # WQE retransmit attempts
        self.timeouts = 0           # ack timeouts that fired
        self.duplicates = 0         # retransmits suppressed at responder
        self.retry_exhaustions = 0  # QPs that hit retry_cnt and errored
        self.reg_failures = 0       # injected registration failures
        self.wc_errors = 0          # injected completion errors

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nz = {k: v for k, v in self.__dict__.items() if v}
        # lint: allow(falsy-or-default, empty dict renders as clean)
        return f"<FaultStats {nz or 'clean'}>"


class FaultState:
    """Runtime fault machinery for one cluster (one per simulation).

    Deterministic by construction: every link direction gets its own
    ``random.Random`` stream derived from ``(plan.seed, src, dst)``, so
    fault decisions depend only on the plan and the order of packets on
    that one link — not on unrelated traffic elsewhere.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        if plan is not None and not isinstance(plan, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan, got {type(plan).__name__}")
        self.plan = FaultPlan() if plan is None else plan
        self.stats = FaultStats()
        #: anything configured at all (guards the injection hooks).
        self.enabled = self.plan.enabled
        #: link faults configured (guards the HCA's RC recovery path;
        #: False keeps the legacy single-shot delivery code).
        self.transport_active = self.plan.transport_enabled
        self._rngs: Dict[Tuple[int, int], random.Random] = {}
        self._reg_left: Dict[int, int] = dict(self.plan.reg_failures)
        self._wc_pending: Dict[int, set] = {
            node: set(ordinals)
            for node, ordinals in self.plan.wc_errors.items()
        }
        self._send_ops: Dict[int, int] = {}

    # -- link faults -----------------------------------------------------
    def link_faults(self, src: int, dst: int) -> LinkFaults:
        return self.plan.links.get((src, dst), self.plan.default_link)

    def _rng(self, src: int, dst: int) -> random.Random:
        key = (src, dst)
        rng = self._rngs.get(key)
        if rng is None:
            rng = random.Random(
                self.plan.seed * 1_000_003 + src * 8_191 + dst)
            self._rngs[key] = rng
        return rng

    def packet_verdict(self, src: int, dst: int,
                       now: float) -> Tuple[str, float]:
        """Fate of one packet entering link ``src -> dst`` at ``now``:
        ``(OK|DROP|CORRUPT|DELAY, extra_delay_seconds)``."""
        if not self.transport_active:
            return OK, 0.0
        if src == dst and (src, dst) not in self.plan.links:
            # HCA loopback never touches a wire; only an explicit
            # (i, i) entry injects there.
            return OK, 0.0
        lf = self.link_faults(src, dst)
        if not lf.active:
            return OK, 0.0
        for start, end in lf.down:
            if start <= now < end:
                self.stats.link_down_drops += 1
                self.stats.dropped += 1
                return DROP, 0.0
        roll = self._rng(src, dst).random()
        if roll < lf.drop_rate:
            self.stats.dropped += 1
            return DROP, 0.0
        if roll < lf.drop_rate + lf.corrupt_rate:
            self.stats.corrupted += 1
            return CORRUPT, 0.0
        if roll < lf.drop_rate + lf.corrupt_rate + lf.delay_rate:
            self.stats.delayed += 1
            return DELAY, lf.delay_time
        return OK, 0.0

    def corrupt(self, payload: bytes, src: int, dst: int) -> bytes:
        """Flip one byte of ``payload`` (position drawn from the link's
        stream).  Empty payloads pass through untouched — there is
        nothing for a checksum to catch."""
        if not payload:
            return payload
        pos = self._rng(src, dst).randrange(len(payload))
        flipped = bytearray(payload)
        flipped[pos] ^= 0xFF
        return bytes(flipped)

    # -- HCA-level injections --------------------------------------------
    def take_reg_failure(self, node_id: int) -> bool:
        """True if this ``reg_mr`` call on ``node_id`` must fail."""
        if not self.enabled:
            return False
        left = self._reg_left.get(node_id, 0)
        if left <= 0:
            return False
        self._reg_left[node_id] = left - 1
        self.stats.reg_failures += 1
        return True

    def take_wc_error(self, node_id: int) -> bool:
        """True if the send WQE now being processed on ``node_id``
        must complete in error (counted per-node across its QPs)."""
        if not self.enabled:
            return False
        pending = self._wc_pending.get(node_id)
        if not pending:
            return False
        ordinal = self._send_ops.get(node_id, 0)
        self._send_ops[node_id] = ordinal + 1
        if ordinal in pending:
            pending.discard(ordinal)
            self.stats.wc_errors += 1
            return True
        return False
