"""Deterministic fault injection (plans, runtime state, statistics).

See :mod:`repro.faults.plan` for the model and
``DESIGN.md`` §7 for the recovery semantics built on top of it.
"""

from .plan import (CORRUPT, DELAY, DROP, OK, FaultPlan, FaultState,
                   FaultStats, LinkFaults)

__all__ = ["FaultPlan", "FaultState", "FaultStats", "LinkFaults",
           "OK", "DROP", "CORRUPT", "DELAY"]
