"""Deprecated shim — the message tracer moved to
:mod:`repro.obs.msgtrace`.

The old API keeps working::

    tracer = Tracer.attach(world)   # emits a DeprecationWarning

but new code should use :class:`repro.obs.msgtrace.MessageTracer`,
which additionally lands delivered messages on the observability
timeline (Chrome-trace export) when the world carries an enabled
:class:`repro.obs.Observability` hub.
"""

from __future__ import annotations

import warnings

from ..obs.msgtrace import MessageRecord, MessageTracer

__all__ = ["Tracer", "MessageRecord"]


class Tracer(MessageTracer):
    """Backwards-compatible alias of :class:`MessageTracer`."""

    @classmethod
    def attach(cls, world, timeline=None) -> "Tracer":
        warnings.warn(
            "repro.mpi.trace.Tracer is deprecated; use "
            "repro.obs.msgtrace.MessageTracer instead",
            DeprecationWarning, stacklevel=2)
        return super().attach(world, timeline)
