"""Message tracing: record every point-to-point message's lifecycle.

Attach a :class:`Tracer` to a world before running and get a timeline
of (send-posted, matched, completed) events per message — the kind of
instrumentation (à la MPE/jumpshot for MPICH) that lets you *see* the
eager/rendezvous behaviour and unexpected-queue hits the paper's
designs differ on.

    world = build_world(4, "zerocopy")
    tracer = Tracer.attach(world)
    ... run ...
    for rec in tracer.messages:
        print(rec)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..mpich2 import ch3 as _ch3
from ..mpich2.adi3 import Request

__all__ = ["Tracer", "MessageRecord"]


@dataclass
class MessageRecord:
    src: int
    dst: int
    tag: int
    context: int
    size: int
    t_posted: float          # sender: isend entered the device
    t_sent: Optional[float] = None      # send request completed
    t_delivered: Optional[float] = None  # receive request completed
    unexpected: bool = False  # arrived before its receive was posted

    @property
    def latency(self) -> Optional[float]:
        if self.t_delivered is None:
            return None
        return self.t_delivered - self.t_posted

    def __repr__(self) -> str:
        lat = f"{self.latency * 1e6:.2f}us" if self.latency else "?"
        flag = " (unexpected)" if self.unexpected else ""
        return (f"<msg {self.src}->{self.dst} tag={self.tag} "
                f"{self.size}B lat={lat}{flag}>")


class Tracer:
    """Hooks the CH3 devices of a world (idempotent per world)."""

    def __init__(self, world):
        self.world = world
        self.messages: List[MessageRecord] = []
        #: (src, dst, tag, context) -> FIFO of unmatched send records
        self._open: Dict[tuple, List[MessageRecord]] = {}

    @classmethod
    def attach(cls, world) -> "Tracer":
        tracer = cls(world)
        for dev in world.devices:
            tracer._wrap_device(dev)
        return tracer

    def _now(self) -> float:
        return self.world.sim.now

    def _wrap_device(self, dev) -> None:
        tracer = self
        orig_isend = dev.isend
        orig_begin_eager = dev._begin_eager
        orig_finish = dev._finish_inflight
        orig_send_done = dev._send_op_complete
        by_req: Dict[int, MessageRecord] = {}

        def isend(iov, dest, tag, context):
            from ..mpich2.channels.base import iov_total
            rec = MessageRecord(dev.rank, dest, tag, context,
                                iov_total(iov), tracer._now())
            tracer.messages.append(rec)
            key = (dev.rank, dest, tag, context)
            tracer._open.setdefault(key, []).append(rec)
            req = yield from orig_isend(iov, dest, tag, context)
            if req.done:           # fast path already completed
                rec.t_sent = tracer._now()
            else:
                by_req[req.req_id] = rec
            return req

        def _send_op_complete(st, op):
            if op.req is not None:
                rec = by_req.pop(op.req.req_id, None)
                if rec is not None:
                    rec.t_sent = tracer._now()
            return orig_send_done(st, op)

        dev._send_op_complete = _send_op_complete

        def _begin_eager(st, src, tag, context, size):
            result = orig_begin_eager(st, src, tag, context, size)
            msg = st.inflight
            if msg is not None and msg.u is not None:
                key = (src, dev.rank, tag, context)
                fifo = tracer._open.get(key)
                if fifo:
                    fifo[0].unexpected = True
            return result

        def _finish_inflight(st):
            msg = st.inflight
            if msg is not None:
                src, tag, context, _size = msg.env
                key = (src, dev.rank, tag, context)
                fifo = tracer._open.get(key)
                if fifo:
                    rec = fifo.pop(0)
                    rec.t_delivered = tracer._now()
            result = yield from orig_finish(st)
            return result

        dev.isend = isend
        dev._begin_eager = _begin_eager
        dev._finish_inflight = _finish_inflight

    # -- analysis helpers --------------------------------------------------
    def delivered(self) -> List[MessageRecord]:
        return [m for m in self.messages if m.t_delivered is not None]

    def unexpected_fraction(self) -> float:
        d = self.delivered()
        if not d:
            return 0.0
        return sum(1 for m in d if m.unexpected) / len(d)

    def summary(self) -> str:
        d = self.delivered()
        if not d:
            return "no delivered messages traced"
        lats = sorted(m.latency for m in d)
        total = sum(m.size for m in d)
        mid = lats[len(lats) // 2]
        return (f"{len(d)} messages, {total} bytes; latency "
                f"min={lats[0] * 1e6:.2f}us median={mid * 1e6:.2f}us "
                f"max={lats[-1] * 1e6:.2f}us; "
                f"{self.unexpected_fraction():.0%} unexpected")
