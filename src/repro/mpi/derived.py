"""Derived MPI datatypes: contiguous, vector, and indexed layouts.

MPI-1's derived datatypes describe non-contiguous memory layouts
(matrix columns, struct fields, halo faces).  MPICH2 handles them with
a pack/unpack ("dataloop") engine above the channel: non-contiguous
data is packed into a contiguous staging buffer before it enters the
byte pipe, and unpacked after.  Both directions cost real copy time,
charged through the memory-bus model — which is why MPI folklore says
"vector types are not free".

Usage::

    col = Datatype.vector(count=nrows, blocklength=1, stride=ncols,
                          base=DOUBLE)
    yield from comm.Send(buf, dest, tag, datatype=col)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..hw.memory import Buffer

__all__ = ["Datatype", "CHAR", "INT32", "INT64", "FLOAT32", "FLOAT64",
           "DOUBLE", "COMPLEX128"]


@dataclass(frozen=True)
class _Block:
    """One contiguous piece: (byte offset, byte length)."""
    offset: int
    length: int


class Datatype:
    """A typemap: list of contiguous blocks relative to a base
    address, plus the overall extent (stride between successive
    elements of this type)."""

    def __init__(self, blocks: Sequence[_Block], extent: int,
                 name: str = "derived"):
        if extent < 0:
            raise ValueError("negative extent")
        merged = _merge(sorted(blocks, key=lambda b: b.offset))
        for a, b in zip(merged, merged[1:]):
            if a.offset + a.length > b.offset:
                raise ValueError("overlapping blocks in datatype")
        self.blocks: Tuple[_Block, ...] = tuple(merged)
        self.extent = extent
        self.name = name

    # -- constructors ------------------------------------------------------
    @classmethod
    def basic(cls, itemsize: int, name: str) -> "Datatype":
        return cls([_Block(0, itemsize)], itemsize, name)

    @classmethod
    def contiguous(cls, count: int, base: "Datatype") -> "Datatype":
        """count repetitions laid end to end."""
        if count < 1:
            raise ValueError("count must be >= 1")
        blocks = []
        for i in range(count):
            for b in base.blocks:
                blocks.append(_Block(i * base.extent + b.offset,
                                     b.length))
        return cls(blocks, count * base.extent,
                   f"contig({count},{base.name})")

    @classmethod
    def vector(cls, count: int, blocklength: int, stride: int,
               base: "Datatype") -> "Datatype":
        """count blocks of ``blocklength`` elements, block starts
        ``stride`` elements apart (MPI_Type_vector)."""
        if count < 1 or blocklength < 1:
            raise ValueError("count and blocklength must be >= 1")
        if stride < blocklength:
            raise ValueError("stride must be >= blocklength")
        inner = cls.contiguous(blocklength, base) \
            if blocklength > 1 else base
        blocks = []
        for i in range(count):
            off = i * stride * base.extent
            for b in inner.blocks:
                blocks.append(_Block(off + b.offset, b.length))
        extent = ((count - 1) * stride + blocklength) * base.extent
        return cls(blocks, extent,
                   f"vector({count},{blocklength},{stride},"
                   f"{base.name})")

    @classmethod
    def indexed(cls, blocklengths: Sequence[int],
                displacements: Sequence[int],
                base: "Datatype") -> "Datatype":
        """blocks of given element lengths at given element
        displacements (MPI_Type_indexed)."""
        if len(blocklengths) != len(displacements):
            raise ValueError("lengths and displacements must match")
        blocks = []
        end = 0
        for n, d in zip(blocklengths, displacements):
            if n < 1:
                raise ValueError("blocklengths must be >= 1")
            inner = cls.contiguous(n, base) if n > 1 else base
            for b in inner.blocks:
                blocks.append(_Block(d * base.extent + b.offset,
                                     b.length))
            end = max(end, (d + n) * base.extent)
        return cls(blocks, end, f"indexed({len(blocklengths)},"
                                f"{base.name})")

    # -- properties ---------------------------------------------------------
    @property
    def size(self) -> int:
        """True bytes of data (sum of block lengths)."""
        return sum(b.length for b in self.blocks)

    @property
    def is_contiguous(self) -> bool:
        return (len(self.blocks) == 1 and self.blocks[0].offset == 0
                and self.blocks[0].length == self.extent)

    def span(self, count: int = 1) -> int:
        """Bytes of memory touched by ``count`` elements."""
        if count < 1:
            return 0
        last = max((b.offset + b.length for b in self.blocks),
                   default=0)
        return (count - 1) * self.extent + last

    # -- pack / unpack --------------------------------------------------------
    def pack(self, membus, mem, src: Buffer, count: int,
             dst: Buffer) -> Generator:
        """Gather ``count`` elements from ``src`` into contiguous
        ``dst`` (charged copies)."""
        need = self.size * count
        if len(dst) < need:
            raise ValueError(f"pack needs {need} bytes, dst has "
                             f"{len(dst)}")
        if self.span(count) > len(src):
            raise ValueError("source buffer smaller than the type span")
        out = 0
        for i in range(count):
            base_off = i * self.extent
            for b in self.blocks:
                yield from membus.memcpy(
                    mem, dst.addr + out, src.addr + base_off + b.offset,
                    b.length, working_set=need)
                out += b.length
        return need

    def unpack(self, membus, mem, src: Buffer, count: int,
               dst: Buffer) -> Generator:
        """Scatter contiguous ``src`` into ``count`` elements of the
        layout at ``dst``."""
        need = self.size * count
        if len(src) < need:
            raise ValueError(f"unpack needs {need} bytes, src has "
                             f"{len(src)}")
        if self.span(count) > len(dst):
            raise ValueError("target buffer smaller than the type span")
        inp = 0
        for i in range(count):
            base_off = i * self.extent
            for b in self.blocks:
                yield from membus.memcpy(
                    mem, dst.addr + base_off + b.offset, src.addr + inp,
                    b.length, working_set=need)
                inp += b.length
        return need

    def __repr__(self) -> str:
        return (f"<Datatype {self.name} size={self.size} "
                f"extent={self.extent} blocks={len(self.blocks)}>")


def _merge(blocks: List[_Block]) -> List[_Block]:
    """Coalesce adjacent blocks (offset ordering required)."""
    out: List[_Block] = []
    for b in blocks:
        if out and out[-1].offset + out[-1].length == b.offset:
            out[-1] = _Block(out[-1].offset, out[-1].length + b.length)
        else:
            out.append(_Block(b.offset, b.length))
    return out


CHAR = Datatype.basic(1, "char")
INT32 = Datatype.basic(4, "int32")
INT64 = Datatype.basic(8, "int64")
FLOAT32 = Datatype.basic(4, "float32")
FLOAT64 = Datatype.basic(8, "float64")
DOUBLE = FLOAT64
COMPLEX128 = Datatype.basic(16, "complex128")
