"""World construction and the ``run_mpi`` entry point.

This is the piece a paper reader would call ``mpirun``: it builds the
simulated cluster, instantiates one channel + CH3 device per rank,
wires the full connection mesh (the paper's init-time QP/ring/key
exchange), launches the rank programs, and runs the event loop.
"""

from __future__ import annotations

import gc
from contextlib import contextmanager
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

import numpy as np

from ..cluster import Cluster, build_cluster
from ..config import ChannelConfig, HardwareConfig
from ..faults import FaultPlan
from ..hw.memory import Buffer
from ..mpich2.ch3 import Ch3Device
from ..mpich2.channels import registry as channel_registry
from ..tune import TuneConfig
from ..sim.engine import Simulator
from .comm import Communicator
from .status import ANY_SOURCE, ANY_TAG, Status

__all__ = ["MpiContext", "World", "run_mpi", "build_world", "DESIGNS"]

#: design name -> (channel name, device factory)
DESIGNS = ("shm", "basic", "piggyback", "pipeline", "zerocopy",
           "ch3", "multimethod", "tcp", "adaptive",
           "srq", "mux", "srq-lazy")


class MpiContext:
    """The per-rank facade handed to rank programs.

    Exposes the world communicator's operations directly
    (``mpi.send`` == ``mpi.COMM_WORLD.send``) plus simulation helpers
    (``wtime``, ``alloc``)."""

    def __init__(self, world: "World", rank: int, device: Ch3Device):
        self.world = world
        self.rank = rank
        self.size = world.nranks
        self.device = device
        ctx_counter = [0]
        self.COMM_WORLD = Communicator(self, device,
                                       list(range(world.nranks)),
                                       0, ctx_counter)

    # -- delegates ------------------------------------------------------
    def __getattr__(self, name):
        # anything not defined here resolves against COMM_WORLD
        # (send, recv, Isend, Bcast, Barrier, ...)
        return getattr(self.COMM_WORLD, name)

    # -- simulation helpers ------------------------------------------------
    def wtime(self) -> float:
        """MPI_Wtime: current simulated time in seconds."""
        return self.device.node.cluster.sim.now

    def alloc(self, nbytes: int, name: str = "user") -> Buffer:
        """Allocate an application buffer in this rank's node memory."""
        return self.device.node.alloc(nbytes, name)

    def array(self, data: np.ndarray, name: str = "user") -> Buffer:
        """Place a numpy array into node memory; returns its Buffer."""
        raw = np.ascontiguousarray(data)
        buf = self.device.node.alloc(raw.nbytes, name)
        buf.write(raw.view(np.uint8).reshape(-1))
        return buf

    def compute(self, seconds: float):
        """Model a computation phase of the given duration."""
        return self.device.channel.ctx.cpu.work(seconds)

    def finalize(self):
        return self.device.finalize()


class World:
    """The built cluster + per-rank MPI stacks."""

    def __init__(self, cluster: Cluster, nranks: int, design: str,
                 devices: List[Ch3Device]):
        self.cluster = cluster
        self.nranks = nranks
        self.design = design
        self.devices = devices
        #: the observability hub this world was built with (NULL_OBS
        #: unless one was passed to build_world/run_mpi)
        self.obs = cluster.obs
        #: out-of-band QP handoff between collective Win.create calls,
        #: keyed by ((lo_rank, hi_rank), receiving_rank)
        self.win_pending_qps: Dict[tuple, list] = {}
        self.contexts = [MpiContext(self, r, devices[r])
                         for r in range(nranks)]

    @property
    def sim(self) -> Simulator:
        return self.cluster.sim

    def stats(self) -> Dict[str, int]:
        """Aggregate HCA statistics across all nodes."""
        out: Dict[str, int] = {}
        for node in self.cluster.nodes:
            for k, v in node.hca.stats.snapshot().items():
                out[k] = out.get(k, 0) + v
        return out

    def connection_count(self) -> int:
        """Established channel connections (unordered rank pairs) —
        the quantity on-demand establishment keeps at O(pairs that
        actually communicated) instead of O(N²)."""
        return sum(len(d.channel.conns) for d in self.devices) // 2


@contextmanager
def _gc_paused() -> Iterator[None]:
    """Pause the cyclic garbage collector while a world is built (and,
    from :func:`run_mpi`, while the simulation runs).

    A world is millions of long-lived, mutually referencing objects;
    with the collector enabled, every generation-2 pass rescans that
    whole heap, and the passes keep coming as construction allocates —
    measured at ~5x the total wall time of a 256-rank build.  Pausing
    is safe: reference counting still reclaims acyclic garbage
    immediately, and fired events drop their callback lists, so cycle
    churn during a run is minimal.  One collect on exit sweeps
    whatever cycles did form, keeping memory bounded for callers that
    loop over runs.  No-op when the collector is already off (nested
    use, or the caller manages GC itself)."""
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()
        gc.collect()


def build_world(nranks: int, design: str = "zerocopy",
                cfg: Optional[HardwareConfig] = None,
                ch_cfg: Optional[ChannelConfig] = None,
                nnodes: Optional[int] = None,
                faults: Optional[FaultPlan] = None,
                obs=None,
                tune: Optional[TuneConfig] = None,
                tie_seed: Optional[int] = None) -> World:
    """Construct a world: ranks round-robin over nodes (default one
    rank per node, like the paper's runs).  ``faults`` injects
    deterministic fabric/HCA faults (see :mod:`repro.faults`);
    ``obs`` (a :class:`repro.obs.Observability`) records per-layer
    counters and timeline spans for the run; ``tune`` configures the
    adaptive controller (defaults to on for the ``adaptive`` design,
    off — never consulted — everywhere else); ``tie_seed`` enables
    the engine's seeded schedule perturbation (see
    :class:`repro.sim.engine.Simulator` — None keeps the historical
    schedule bit-for-bit)."""
    if design not in DESIGNS:
        raise ValueError(f"unknown design {design!r}; pick from "
                         f"{DESIGNS}")
    cfg = HardwareConfig() if cfg is None else cfg
    ch_cfg = ChannelConfig() if ch_cfg is None else ch_cfg

    if design == "shm":
        nnodes = 1  # all ranks share one node's memory
    nnodes = nranks if nnodes is None else nnodes
    if nnodes > nranks:
        nnodes = nranks

    with _gc_paused():
        cluster = build_cluster(
            nnodes, cfg, faults=faults, obs=obs, tie_seed=tie_seed,
            ncpus_per_node=max(2, -(-nranks // nnodes)))

        # design -> (channel registry name, device class); the two CH3
        # rendezvous designs pair a specific device with their channel
        if design == "ch3":
            from ..mpich2.ch3_rdma.device import Ch3RdmaDevice
            channel_name = "pipeline"
            device_cls = Ch3RdmaDevice
        elif design == "adaptive":
            from ..mpich2.ch3_rdma.adaptive import Ch3AdaptiveDevice
            channel_name = "adaptive"
            device_cls = Ch3AdaptiveDevice
            if tune is None:
                tune = TuneConfig()
        elif design == "srq-lazy":
            # the srq channel with on-demand connection establishment:
            # no init-time mesh, connections appear on first send
            channel_name = "srq"
            device_cls = Ch3Device
        else:
            channel_name = design
            device_cls = Ch3Device

        lazy = design == "srq-lazy"
        channel_cls = channel_registry.lookup(channel_name)
        channels = []
        for r in range(nranks):
            node = cluster.nodes[r % nnodes]
            cpu_index = r // nnodes
            ctx = node.vapi(cpu_index % len(node.cpus))
            chan = channel_registry.create(
                channel_name, rank=r, node=node, ctx=ctx, cfg=cfg,
                ch_cfg=ch_cfg, tune=tune)
            chan.initialize(nranks)
            channels.append(chan)

        if not lazy:
            # full mesh (paper: every connection set up during init)
            for i in range(nranks):
                for j in range(i + 1, nranks):
                    channel_cls.establish(channels[i], channels[j])

        devices = []
        for r in range(nranks):
            dev = device_cls(r, nranks, channels[r])
            dev.attach_connections()
            devices.append(dev)

        if lazy:
            from ..mpich2.connect import LazyConnector
            connector = LazyConnector(
                cluster, channel_cls,
                {r: channels[r] for r in range(nranks)})
            for dev in devices:
                dev.connector = connector
                connector.devices[dev.rank] = dev
        world = World(cluster, nranks, design, devices)
        # arm deadlock diagnosis (graph + cycle naming).  Without the
        # message tracer this costs nothing per event — the detector
        # only runs after the queue has drained with blocked fibers —
        # so schedules and digests stay bit-for-bit identical.
        from ..obs.waitgraph import DeadlockDetector
        DeadlockDetector.attach(world)
        return world


def run_mpi_profiled(nranks: int, prog: Callable, *,
                     design: str = "zerocopy",
                     cfg: Optional[HardwareConfig] = None,
                     ch_cfg: Optional[ChannelConfig] = None,
                     nnodes: Optional[int] = None,
                     faults: Optional[FaultPlan] = None,
                     obs=None,
                     tune: Optional[TuneConfig] = None,
                     tie_seed: Optional[int] = None,
                     args: Sequence = (),
                     until: Optional[float] = None
                     ) -> Tuple[List, "World"]:
    """Like :func:`run_mpi`, but returns ``(per-rank return values,
    world)`` so callers can inspect the finished world — the simspeed
    benchmark and the scale tier read ``world.sim.events_processed``
    and ``world.sim.now`` for throughput and run fingerprints.
    """
    with _gc_paused():
        world = build_world(nranks, design, cfg, ch_cfg, nnodes, faults,
                            obs=obs, tune=tune, tie_seed=tie_seed)
        procs = [world.cluster.spawn(prog(ctx, *args),
                                     f"rank{ctx.rank}")
                 for ctx in world.contexts]
        world.cluster.run(until)
    return [p.value for p in procs], world


def run_mpi(nranks: int, prog: Callable, *,
            design: str = "zerocopy",
            cfg: Optional[HardwareConfig] = None,
            ch_cfg: Optional[ChannelConfig] = None,
            nnodes: Optional[int] = None,
            faults: Optional[FaultPlan] = None,
            obs=None,
            tune: Optional[TuneConfig] = None,
            tie_seed: Optional[int] = None,
            args: Sequence = (),
            until: Optional[float] = None) -> Tuple[List, float]:
    """Run ``prog(mpi, *args)`` on ``nranks`` ranks; returns
    ``(per-rank return values, elapsed simulated seconds)``.

    ``prog`` must be a generator function; all MPI calls inside use
    ``yield from`` (see the examples/ directory).
    """
    results, world = run_mpi_profiled(
        nranks, prog, design=design, cfg=cfg, ch_cfg=ch_cfg,
        nnodes=nnodes, faults=faults, obs=obs, tune=tune,
        tie_seed=tie_seed, args=args, until=until)
    return results, world.sim.now
