"""MPI_Status and the reserved wildcard/tag constants."""

from __future__ import annotations

from ..mpich2.adi3 import ANY_SOURCE, ANY_TAG

__all__ = ["Status", "ANY_SOURCE", "ANY_TAG"]


class Status:
    """Completion information of a receive (MPI_Status)."""

    __slots__ = ("source", "tag", "count")

    def __init__(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                 count: int = 0):
        self.source = source
        self.tag = tag
        self.count = count

    def get_count(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"Status(source={self.source}, tag={self.tag}, "
                f"count={self.count})")

    def __eq__(self, other) -> bool:
        return (isinstance(other, Status)
                and (self.source, self.tag, self.count)
                == (other.source, other.tag, other.count))
