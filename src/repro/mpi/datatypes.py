"""Datatype and reduction-operator support.

User payloads may be simulated :class:`~repro.hw.memory.Buffer`
objects, ``bytes``/``bytearray``, or numpy arrays.  Non-Buffer payloads
are *staged* into simulated node memory at no modelled cost — staging
represents data that already lives in the application's address space;
all subsequent copies (into rings, out of rings) are charged normally.

Reduction operators work element-wise on numpy arrays (buffer-mode
collectives) and on arbitrary Python values (object-mode collectives).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

import numpy as np

from ..hw.memory import Buffer, NodeMemory

__all__ = ["Op", "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND",
           "BOR", "BXOR", "MAXLOC", "MINLOC", "stage", "as_bytes",
           "typed_view"]


class Op:
    """A reduction operator."""

    def __init__(self, name: str, np_op: Optional[Callable],
                 py_op: Callable, commutative: bool = True):
        self.name = name
        self.np_op = np_op
        self.py_op = py_op
        self.commutative = commutative

    def reduce_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.np_op is None:
            raise TypeError(f"operator {self.name} is object-mode only")
        return self.np_op(a, b)

    def __call__(self, a: Any, b: Any) -> Any:
        return self.py_op(a, b)

    def __repr__(self) -> str:
        return f"<Op {self.name}>"


SUM = Op("sum", np.add, lambda a, b: a + b)
PROD = Op("prod", np.multiply, lambda a, b: a * b)
MAX = Op("max", np.maximum, lambda a, b: max(a, b))
MIN = Op("min", np.minimum, lambda a, b: min(a, b))
LAND = Op("land", np.logical_and, lambda a, b: bool(a) and bool(b))
LOR = Op("lor", np.logical_or, lambda a, b: bool(a) or bool(b))
BAND = Op("band", np.bitwise_and, lambda a, b: a & b)
BOR = Op("bor", np.bitwise_or, lambda a, b: a | b)
BXOR = Op("bxor", np.bitwise_xor, lambda a, b: a ^ b)
# value-with-location reductions (object mode): operands are
# (value, location) pairs
MAXLOC = Op("maxloc", None,
            lambda a, b: a if (a[0], -a[1]) >= (b[0], -b[1]) else b)
MINLOC = Op("minloc", None,
            lambda a, b: a if (a[0], a[1]) <= (b[0], b[1]) else b)


def as_bytes(data: Union[Buffer, bytes, bytearray, memoryview,
                         np.ndarray]) -> bytes:
    if isinstance(data, Buffer):
        return data.read()
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data).tobytes()
    return bytes(data)


def stage(mem: NodeMemory, data: Union[Buffer, bytes, bytearray,
                                       memoryview, np.ndarray],
          name: str = "stage") -> Buffer:
    """Place user data into simulated node memory (no modelled cost:
    the data conceptually already lives there).  Buffers pass through
    untouched."""
    if isinstance(data, Buffer):
        return data
    raw = as_bytes(data)
    buf = Buffer.alloc(mem, max(len(raw), 1), name)
    if raw:
        buf.write(raw)
    if not raw:
        return buf.sub(0, 0)
    return buf


def typed_view(buf: Buffer, dtype) -> np.ndarray:
    """Interpret a simulated buffer's bytes as a typed numpy array
    (shares storage — mutations write through)."""
    dt = np.dtype(dtype)
    if len(buf) % dt.itemsize:
        raise ValueError(
            f"buffer of {len(buf)} bytes is not a multiple of "
            f"{dt.itemsize}-byte {dt}")
    return buf.view().view(dt)
