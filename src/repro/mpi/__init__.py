"""MPI-1 API over the MPICH2 stack.

Rank programs are generator functions receiving an
:class:`~repro.mpi.runner.MpiContext`; every blocking call is used
with ``yield from``:

    def prog(mpi):
        if mpi.rank == 0:
            yield from mpi.send({"hello": 1}, dest=1)
        else:
            obj, status = yield from mpi.recv(source=0)

Launch with :func:`run_mpi`.
"""

from ..mpich2.adi3 import ANY_SOURCE, ANY_TAG, MpiError, Request, \
    TruncateError
from .comm import Communicator
from .datatypes import (BAND, BOR, BXOR, LAND, LOR, MAX, MAXLOC, MIN,
                        MINLOC, PROD, SUM, Op)
from .cart import CartComm, dims_create
from .derived import (CHAR, COMPLEX128, DOUBLE, FLOAT32, FLOAT64,
                      INT32, INT64, Datatype)
from .runner import (DESIGNS, MpiContext, World, build_world, run_mpi,
                     run_mpi_profiled)
from .status import Status

__all__ = [
    "run_mpi", "run_mpi_profiled", "build_world", "DESIGNS",
    "MpiContext", "World",
    "Communicator", "Status", "Request",
    "ANY_SOURCE", "ANY_TAG", "MpiError", "TruncateError",
    "Op", "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND", "BOR",
    "BXOR", "MAXLOC", "MINLOC",
    "Datatype", "CHAR", "INT32", "INT64", "FLOAT32", "FLOAT64",
    "DOUBLE", "COMPLEX128", "CartComm", "dims_create",
]
