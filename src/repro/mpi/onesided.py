"""MPI-2 one-sided communication over InfiniBand RDMA.

The paper's stated future work (§9): "Another direction we are
pursuing is to provide support for MPI-2 functionalities such as
one-sided communication using RDMA and atomic operations in
InfiniBand."  This module implements the active-target subset —
``Win_create`` / ``Put`` / ``Get`` / ``Accumulate`` / ``Fence`` — the
way MVAPICH2 later did: window memory is registered once at creation,
addresses and rkeys are exchanged collectively, and Put/Get map 1:1
onto RDMA write/read with no target-side software involvement between
fences.

Windows use their own queue pairs (created at ``Win.create`` time), so
one-sided traffic never interleaves with the channel's send/recv
protocol state on the shared QPs.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

import numpy as np

from ..hw.memory import Buffer
from ..ib.types import Opcode, WcStatus
from ..mpich2.adi3 import MpiError
from .datatypes import SUM, Op

__all__ = ["Win"]


class Win:
    """An RMA window (MPI_Win), active-target synchronization only."""

    def __init__(self, comm, local: Buffer):
        self.comm = comm
        self.local = local
        self._qps: Dict[int, object] = {}
        self._remote: Dict[int, tuple] = {}   # rank -> (addr, rkey, size)
        self._mr = None
        self._pending = 0
        self._epoch_open = False
        self._freed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, comm, local: Buffer) -> Generator[None, None, "Win"]:
        """Collective window creation: register the exposed buffer,
        build a dedicated QP mesh, and exchange (addr, rkey, size)."""
        win = cls(comm, local)
        device = comm.device
        ctx = device.channel.ctx
        win._mr = yield from ctx.reg_mr(local.addr, max(len(local), 1))

        # out-of-band QP mesh (like the channels' establish step); the
        # world object gives simulation-level access to peer devices.
        world = comm.mpi.world
        my_world_rank = device.rank
        for peer_local in range(comm.size):
            peer_world = comm.group[peer_local]
            if peer_world == my_world_rank:
                continue
            # create one QP pair per unordered rank pair exactly once:
            # whichever rank's create call reaches the pair first
            # builds both ends and stashes the peer's end for the
            # peer's create call to pick up.  First-arrival (rather
            # than lowest-rank) creation keeps the collective legal
            # under any rank arrival order — the ranks may reach
            # Win.create at different simulated times.  The handoff
            # bucket lives on the world object so the key is a stable
            # rank tuple, never an interpreter address.
            pair = (min(my_world_rank, peer_world),
                    max(my_world_rank, peer_world))
            pending = world.win_pending_qps
            bucket = pending.get((pair, my_world_rank))
            if bucket:
                win._qps[peer_local] = bucket.pop(0)
            else:
                peer_dev = world.devices[peer_world]
                my_hca = device.node.hca
                peer_hca = peer_dev.node.hca
                cq_a = my_hca.create_cq()
                cq_b = peer_hca.create_cq()
                qp_a = my_hca.create_qp(cq_a)
                qp_b = peer_hca.create_qp(cq_b)
                qp_a.connect(qp_b)
                win._qps[peer_local] = qp_a
                pending.setdefault(
                    (pair, peer_world), []).append(qp_b)
        # exchange window addresses/keys (collective, charged)
        infos = yield from comm.allgather(
            (win.local.addr, win._mr.rkey, len(local)))
        for r, info in enumerate(infos):
            win._remote[r] = tuple(info)
        yield from comm.Barrier()
        win._epoch_open = True
        return win

    # ------------------------------------------------------------------
    def _check(self, target: int, disp: int, nbytes: int,
               allow_self: bool = False) -> tuple:
        if self._freed:
            raise MpiError("window is freed")
        if not self._epoch_open:
            raise MpiError("RMA access outside an epoch (call Fence)")
        if target == self.comm.rank and not allow_self:
            raise MpiError("use local loads/stores for the local window")
        addr, rkey, size = self._remote[target]
        if disp < 0 or disp + nbytes > size:
            raise MpiError(
                f"RMA access [{disp}, {disp + nbytes}) outside window "
                f"of {size} bytes at rank {target}")
        return addr, rkey

    def put(self, origin: Buffer, target: int, disp: int = 0
            ) -> Generator:
        """MPI_Put: one RDMA write, no target software.  Self-targets
        degrade to a charged local copy."""
        addr, rkey = self._check(target, disp, len(origin),
                                 allow_self=True)
        ctx = self.comm.device.channel.ctx
        if target == self.comm.rank:
            node = self.comm.device.node
            yield from node.membus.memcpy(
                node.mem, self.local.addr + disp, origin.addr,
                len(origin))
            return None
        yield from ctx.rdma_write(
            self._qps[target],
            [(origin.addr, len(origin), self._mr_for(origin).lkey)],
            addr + disp, rkey, signaled=True)
        self._pending += 1
        return None

    def get(self, origin: Buffer, target: int, disp: int = 0
            ) -> Generator:
        """MPI_Get: one RDMA read.  Self-targets degrade to a charged
        local copy."""
        addr, rkey = self._check(target, disp, len(origin),
                                 allow_self=True)
        ctx = self.comm.device.channel.ctx
        if target == self.comm.rank:
            node = self.comm.device.node
            yield from node.membus.memcpy(
                node.mem, origin.addr, self.local.addr + disp,
                len(origin))
            return None
        yield from ctx.rdma_read(
            self._qps[target],
            [(origin.addr, len(origin), self._mr_for(origin).lkey)],
            addr + disp, rkey, signaled=True)
        self._pending += 1
        return None

    def accumulate(self, origin: Buffer, target: int, disp: int = 0,
                   op: Op = SUM, dtype=np.float64) -> Generator:
        """MPI_Accumulate, get-modify-put style (the paper's future
        work mentions InfiniBand atomics; fetch-op-write is the
        general-datatype path).  Only meaningful between fences."""
        n = len(origin)
        ctx = self.comm.device.channel.ctx
        # fetch current value into scratch, combine locally, write back
        tmp = self.comm.device.node.alloc(n, "win.acc")
        tmr = yield from ctx.reg_mr(tmp.addr, n)
        addr, rkey = self._check(target, disp, n)
        wr = yield from ctx.rdma_read(
            self._qps[target], [(tmp.addr, n, tmr.lkey)],
            addr + disp, rkey, signaled=True)
        yield from self._await_wr(target, wr.wr_id)
        dt = np.dtype(dtype)
        cur = tmp.view().view(dt)
        mine = origin.view().view(dt)
        tmp.view().view(dt)[:] = op.reduce_arrays(cur, mine)
        wr = yield from ctx.rdma_write(
            self._qps[target], [(tmp.addr, n, tmr.lkey)],
            addr + disp, rkey, signaled=True)
        # the scratch registration is torn down right away, so this
        # op completes synchronously rather than at the fence
        yield from self._await_wr(target, wr.wr_id)
        yield from ctx.dereg_mr(tmr)
        self.comm.device.node.mem.free(tmp.addr)
        return None

    def _await_wr(self, target: int, wr_id: int) -> Generator:
        """Reap the CQ until a specific work request completes.
        Completions of earlier signaled put/get operations (normally
        reaped at the fence) are credited against ``_pending`` —
        without this, an atomic could consume a put's CQE and return
        a stale result buffer."""
        ctx = self.comm.device.channel.ctx
        qp = self._qps[target]
        while True:
            cqe = yield from ctx.wait_cq(qp.send_cq)
            if cqe.status is not WcStatus.SUCCESS:
                raise MpiError(f"RMA op failed: {cqe.status}")
            if cqe.wr_id == wr_id:
                return None
            self._pending -= 1

    def _mr_for(self, origin: Buffer):
        """Origin buffers inside the window reuse its registration;
        others hit the channel's registration cache."""
        if (self.local.addr <= origin.addr
                and origin.addr + len(origin)
                <= self.local.addr + len(self.local)):
            return self._mr
        raise MpiError(
            "origin buffer must lie inside the window (register-free "
            "fast path); stage your data into the window buffer")

    def fetch_and_op(self, add: int, target: int, disp: int = 0,
                     result_disp: int = 8
                     ) -> Generator[None, None, int]:
        """MPI_Fetch_and_op(SUM) over the InfiniBand atomic unit
        (§9: "atomic operations in InfiniBand"): atomically add
        ``add`` to the 8-byte integer at ``disp`` in ``target``'s
        window; the old value is returned and also lands at
        ``result_disp`` in the local window."""
        import struct as _struct
        addr, rkey = self._check(target, disp, 8, allow_self=True)
        if result_disp + 8 > len(self.local):
            raise MpiError("result_disp outside the local window")
        ctx = self.comm.device.channel.ctx
        if target == self.comm.rank:
            # loopback atomic: local locked RMW (no wire round trip)
            if (self.local.addr + disp) % 8:
                raise MpiError("atomic target must be 8-byte aligned")
            yield from ctx.cpu.work(ctx.cfg.cq_poll_cpu)
            old = _struct.unpack(
                "<Q", self.local.read()[disp:disp + 8])[0]
            new = (old + add) & 0xFFFFFFFFFFFFFFFF
            self.local.view()[disp:disp + 8] = np.frombuffer(
                _struct.pack("<Q", new), dtype=np.uint8)
            return old
        wr = yield from ctx.fetch_add(
            self._qps[target], self.local.addr + result_disp,
            self._mr.lkey, addr + disp, rkey, add, signaled=True)
        yield from self._await_wr(target, wr.wr_id)
        return _struct.unpack(
            "<Q", self.local.read()[result_disp:result_disp + 8])[0]

    def compare_and_swap(self, compare: int, swap: int, target: int,
                         disp: int = 0, result_disp: int = 8
                         ) -> Generator[None, None, int]:
        """MPI_Compare_and_swap over the IB atomic unit; returns the
        old value (the swap happened iff old == compare)."""
        import struct as _struct
        addr, rkey = self._check(target, disp, 8, allow_self=True)
        if result_disp + 8 > len(self.local):
            raise MpiError("result_disp outside the local window")
        ctx = self.comm.device.channel.ctx
        if target == self.comm.rank:
            if (self.local.addr + disp) % 8:
                raise MpiError("atomic target must be 8-byte aligned")
            yield from ctx.cpu.work(ctx.cfg.cq_poll_cpu)
            old = _struct.unpack(
                "<Q", self.local.read()[disp:disp + 8])[0]
            if old == compare:
                self.local.view()[disp:disp + 8] = np.frombuffer(
                    _struct.pack("<Q", swap), dtype=np.uint8)
            return old
        wr = yield from ctx.cmp_swap(
            self._qps[target], self.local.addr + result_disp,
            self._mr.lkey, addr + disp, rkey, compare, swap,
            signaled=True)
        yield from self._await_wr(target, wr.wr_id)
        return _struct.unpack(
            "<Q", self.local.read()[result_disp:result_disp + 8])[0]

    # ------------------------------------------------------------------
    def fence(self) -> Generator:
        """MPI_Win_fence: complete all local RMA ops, then a barrier
        so every rank's epoch closes together."""
        ctx = self.comm.device.channel.ctx
        for peer, qp in self._qps.items():
            while True:
                cqe = ctx.poll_cq(qp.send_cq)
                if cqe is None:
                    break
                if cqe.status is not WcStatus.SUCCESS:
                    raise MpiError(f"RMA op failed: {cqe.status}")
                self._pending -= 1
        while self._pending > 0:
            # wait for stragglers across all window QPs
            ev = [qp.send_cq.wait_event() for qp in self._qps.values()]
            yield self.comm.device.node.cluster.sim.any_of(ev)
            for qp in self._qps.values():
                while True:
                    cqe = ctx.poll_cq(qp.send_cq)
                    if cqe is None:
                        break
                    if cqe.status is not WcStatus.SUCCESS:
                        raise MpiError(f"RMA op failed: {cqe.status}")
                    self._pending -= 1
        yield from self.comm.Barrier()
        self._epoch_open = True
        return None

    def free(self) -> Generator:
        yield from self.fence()
        ctx = self.comm.device.channel.ctx
        yield from ctx.dereg_mr(self._mr)
        self._freed = True
        self._epoch_open = False
        return None
