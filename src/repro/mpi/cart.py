"""Cartesian process topologies (MPI_Cart_*).

Grid-structured applications — every stencil code, and NAS LU/SP/BT —
address neighbours by coordinates rather than ranks.  This implements
the MPI-1 topology subset over :class:`~repro.mpi.comm.Communicator`:
``create`` (with dimension balancing à la MPI_Dims_create), coordinate
conversion, neighbour shifts with optional periodicity, and
sub-grid extraction.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from ..mpich2.adi3 import MpiError
from .comm import Communicator

__all__ = ["CartComm", "dims_create"]


def dims_create(nnodes: int, ndims: int,
                dims: Optional[Sequence[int]] = None) -> List[int]:
    """MPI_Dims_create: balanced factorization of ``nnodes`` over
    ``ndims`` dimensions; zeros in ``dims`` are free, nonzeros fixed."""
    out = list(dims) if dims is not None else [0] * ndims
    if len(out) != ndims:
        raise MpiError("dims length must equal ndims")
    fixed = 1
    free_idx = [i for i, d in enumerate(out) if d == 0]
    for d in out:
        if d < 0:
            raise MpiError("dims entries must be >= 0")
        fixed *= max(d, 1)
    if fixed <= 0 or nnodes % fixed:
        raise MpiError(f"cannot factor {nnodes} over fixed dims {out}")
    rest = nnodes // fixed
    # distribute `rest` over the free dimensions, most-square first
    factors = _prime_factors(rest)
    sizes = [1] * len(free_idx)
    for f in sorted(factors, reverse=True):
        sizes[sizes.index(min(sizes))] *= f
    for i, s in zip(free_idx, sorted(sizes, reverse=True)):
        out[i] = s
    if not free_idx and rest != 1:
        raise MpiError("fixed dims do not cover nnodes")
    return out


def _prime_factors(n: int) -> List[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


class CartComm:
    """A communicator with an attached Cartesian topology.

    Wraps (rather than subclasses) a Communicator: all point-to-point
    and collective operations are reachable through ``.comm`` or via
    delegation, and topology queries are methods here."""

    def __init__(self, comm: Communicator, dims: List[int],
                 periods: List[bool]):
        self.comm = comm
        self.dims = list(dims)
        self.periods = list(periods)
        self.ndims = len(dims)

    # -- construction ------------------------------------------------------
    @classmethod
    def create(cls, comm: Communicator, dims: Sequence[int],
               periods: Optional[Sequence[bool]] = None,
               reorder: bool = False
               ) -> Generator[None, None, Optional["CartComm"]]:
        """Collective: build a grid communicator.  Ranks beyond the
        grid size get ``None`` (like MPI_COMM_NULL)."""
        if any(d == 0 for d in dims):
            dims = dims_create(comm.size, len(dims), dims)
        else:
            dims = list(dims)
        size = _prod(dims)
        if size > comm.size:
            raise MpiError(f"grid {dims} needs {size} ranks, have "
                           f"{comm.size}")
        periods = list(periods) if periods is not None \
            else [False] * len(dims)
        if len(periods) != len(dims):
            raise MpiError("periods length must equal dims length")
        color = 0 if comm.rank < size else None
        sub = yield from comm.Split(
            color if color is not None else -1, comm.rank)
        if comm.rank >= size:
            return None
        return cls(sub, dims, periods)

    # -- queries ----------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def coords(self, rank: Optional[int] = None) -> List[int]:
        """MPI_Cart_coords (row-major, like MPICH)."""
        r = self.rank if rank is None else rank
        if not (0 <= r < _prod(self.dims)):
            raise MpiError(f"rank {r} outside the grid")
        out = []
        for d in reversed(self.dims):
            out.append(r % d)
            r //= d
        return list(reversed(out))

    def cart_rank(self, coords: Sequence[int]) -> int:
        """MPI_Cart_rank; periodic dimensions wrap, others must be in
        range."""
        if len(coords) != self.ndims:
            raise MpiError("coordinate arity mismatch")
        r = 0
        for c, d, p in zip(coords, self.dims, self.periods):
            if p:
                c %= d
            elif not (0 <= c < d):
                raise MpiError(f"coordinate {c} outside non-periodic "
                               f"dimension of size {d}")
            r = r * d + c
        return r

    def shift(self, direction: int, disp: int = 1
              ) -> Tuple[Optional[int], Optional[int]]:
        """MPI_Cart_shift: (source, dest) ranks for a displacement
        along ``direction``; None where the edge is open."""
        if not (0 <= direction < self.ndims):
            raise MpiError(f"bad direction {direction}")
        me = self.coords()

        def resolve(offset):
            c = list(me)
            c[direction] += offset
            d = self.dims[direction]
            if self.periods[direction]:
                c[direction] %= d
            elif not (0 <= c[direction] < d):
                return None
            return self.cart_rank(c)

        return resolve(-disp), resolve(disp)

    def sub(self, remain: Sequence[bool]
            ) -> Generator[None, None, "CartComm"]:
        """MPI_Cart_sub: split into sub-grids keeping the dimensions
        flagged in ``remain`` (collective)."""
        if len(remain) != self.ndims:
            raise MpiError("remain length must equal ndims")
        me = self.coords()
        color = 0
        key = 0
        for c, d, keep in zip(me, self.dims, remain):
            if keep:
                key = key * d + c
            else:
                color = color * d + c
        sub = yield from self.comm.Split(color, key)
        dims = [d for d, keep in zip(self.dims, remain) if keep]
        periods = [p for p, keep in zip(self.periods, remain) if keep]
        if not dims:
            dims, periods = [1], [False]
        return CartComm(sub, dims, periods)

    def __repr__(self) -> str:
        return (f"<CartComm {self.dims} periods={self.periods} "
                f"rank={self.rank}>")


def _prod(xs) -> int:
    out = 1
    for x in xs:
        out *= x
    return out


def _grid_size(dims, total) -> int:
    return total
