"""RDMA-based collective operations.

The paper's §9: "We are also working on how to support efficient
collective communication on top of InfiniBand", citing the RDMA-based
collectives of Gupta et al. [21].  This module implements that idea:
collective operations that bypass the whole CH3/channel stack and use
direct RDMA writes into pre-exchanged per-peer buffers, with flag
polling for arrival detection — the same technique the channels use
internally, but without per-message packet headers, matching, or
progress-engine overhead.

Provided: a dissemination **barrier** and a binomial **broadcast** for
small payloads.  ``benchmarks/test_ablation_rdma_collectives.py``
measures what they buy over the point-to-point implementations.

Correctness note: the HCA gathers source data when a descriptor
*executes*, not when it is posted, so outgoing flag lines are
double-buffered by epoch parity and reused only after the previous
write on that line has completed (reaped from the CQ).
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from ..hw.memory import Buffer
from ..ib.types import WcStatus
from ..mpich2.adi3 import MpiError

__all__ = ["RdmaCollectives"]

_SLOT = 64        # one cache line per round/peer
_MAX_ROUNDS = 24
_BCAST_MAX = 4095


class RdmaCollectives:
    """Direct-RDMA collectives bound to one communicator.

    Create collectively with :meth:`create`; the setup registers a
    small signal region per rank and exchanges addresses/rkeys, after
    which barriers and broadcasts cost exactly the RDMA writes they
    issue.
    """

    # region layout (offsets within the signal buffer)
    _IN_BARRIER = 0                                  # _SLOT * rounds
    _IN_BCAST = _SLOT * _MAX_ROUNDS                  # 1 + payload
    _OUT_BASE = _IN_BCAST + 1 + _BCAST_MAX           # scratch lines

    def __init__(self, comm):
        self.comm = comm
        self._qps: Dict[int, object] = {}
        self._remote: Dict[int, tuple] = {}
        self.signals: Optional[Buffer] = None
        self._mr = None
        self._barrier_epoch = 0
        self._bcast_epoch = 0
        #: scratch line -> (qp, wr_id) of the last write gathered from it
        self._line_pending: Dict[int, Tuple[object, int]] = {}

    @classmethod
    def create(cls, comm) -> Generator[None, None, "RdmaCollectives"]:
        self = cls(comm)
        device = comm.device
        ctx = device.channel.ctx
        # out area: double-buffered barrier lines + bcast staging x2
        out_size = _SLOT * _MAX_ROUNDS * 2 + 2 * (1 + _BCAST_MAX)
        size = self._OUT_BASE + out_size
        self.signals = device.node.alloc(size, "rcoll.signals")
        self.signals.view()[:] = 0
        self._mr = yield from ctx.reg_mr(self.signals.addr, size)

        world = comm.mpi.world
        me = device.rank
        for peer_local in range(comm.size):
            peer_world = comm.group[peer_local]
            if peer_world == me:
                continue
            if me < peer_world:
                peer_dev = world.devices[peer_world]
                cq_a = device.node.hca.create_cq()
                cq_b = peer_dev.node.hca.create_cq()
                qp_a = device.node.hca.create_qp(cq_a)
                qp_b = peer_dev.node.hca.create_qp(cq_b)
                qp_a.connect(qp_b)
                self._qps[peer_local] = qp_a
                _pending_qps.setdefault((peer_world, me), []).append(qp_b)
            else:
                bucket = _pending_qps.get((me, peer_world))
                if not bucket:
                    raise MpiError("RdmaCollectives.create must be "
                                   "called collectively")
                self._qps[peer_local] = bucket.pop(0)
        infos = yield from comm.allgather(
            (self.signals.addr, self._mr.rkey))
        for r, info in enumerate(infos):
            self._remote[r] = tuple(info)
        yield from comm.Barrier()
        return self

    # ------------------------------------------------------------------
    # low-level write/poll with scratch-line lifecycle
    # ------------------------------------------------------------------
    def _reap_line(self, src_off: int) -> Generator:
        """Ensure the previous write gathered from this scratch line
        has executed (drain its CQ up to that wr_id)."""
        pending = self._line_pending.pop(src_off, None)
        if pending is None:
            return None
        qp, wr_id = pending
        ctx = self.comm.device.channel.ctx
        while True:
            cqe = ctx.poll_cq(qp.send_cq)
            if cqe is None:
                # nothing reaped yet: wait for the next completion
                yield qp.send_cq.wait_event()
                continue
            if cqe.status is not WcStatus.SUCCESS:
                raise MpiError(f"RDMA collective write failed: "
                               f"{cqe.status}")
            if cqe.wr_id == wr_id:
                return None
            # a completion for some other scratch line on this QP:
            # retire that line too, or its own reap would hang waiting
            # for a CQE we just drained
            for off, (_q, wid) in list(self._line_pending.items()):
                if wid == cqe.wr_id:
                    del self._line_pending[off]
                    break

    def _post_from_line(self, target: int, src_off: int, length: int,
                        dst_off: int) -> Generator:
        ctx = self.comm.device.channel.ctx
        addr, rkey = self._remote[target]
        wr = yield from ctx.rdma_write(
            self._qps[target],
            [(self.signals.addr + src_off, length, self._mr.lkey)],
            addr + dst_off, rkey, signaled=True)
        self._line_pending[src_off] = (self._qps[target], wr.wr_id)
        return None

    def _poll_flag(self, offset: int, value: int) -> Generator:
        ctx = self.comm.device.channel.ctx
        hca = self.comm.device.node.hca
        view = self.signals.view()
        slept = False
        while view[offset] != value:
            slept = True
            yield hca.inbound_gate.wait()
        if slept:
            yield ctx.sim.timeout(ctx.cfg.poll_detect_latency)
        yield from ctx.cpu.work(ctx.cfg.cq_poll_cpu)
        return None

    # ------------------------------------------------------------------
    def barrier(self) -> Generator:
        """Dissemination barrier over direct RDMA writes: log2(p)
        rounds, each one write + one local memory poll."""
        p, r = self.comm.size, self.comm.rank
        if p == 1:
            return None
        self._barrier_epoch += 1
        seq = (self._barrier_epoch % 250) + 1
        parity = self._barrier_epoch % 2
        k = 0
        step = 1
        while step < p:
            if k >= _MAX_ROUNDS:
                raise MpiError("too many barrier rounds")
            dest = (r + step) % p
            src_off = (self._OUT_BASE + _SLOT * (2 * k + parity))
            yield from self._reap_line(src_off)
            self.signals.view()[src_off] = seq
            yield from self._post_from_line(dest, src_off, 1,
                                            self._IN_BARRIER + _SLOT * k)
            yield from self._poll_flag(self._IN_BARRIER + _SLOT * k, seq)
            step <<= 1
            k += 1
        return None

    def bcast(self, buf: Buffer, root: int = 0) -> Generator:
        """Binomial broadcast of a small payload (<= 4 KB) via direct
        RDMA writes carrying a trailing flag."""
        p, r = self.comm.size, self.comm.rank
        n = len(buf)
        if n > _BCAST_MAX:
            raise MpiError(f"rdma bcast payload limited to {_BCAST_MAX}")
        if p == 1:
            return None
        self._bcast_epoch += 1
        seq = (self._bcast_epoch % 250) + 1
        parity = self._bcast_epoch % 2
        in_off = self._IN_BCAST
        out_off = (self._OUT_BASE + _SLOT * _MAX_ROUNDS * 2
                   + parity * (1 + _BCAST_MAX))
        vr = (r - root) % p
        mask = 1
        while mask < p and not (vr & mask):
            mask <<= 1
        if vr:
            # flag byte lands after the payload (bottom fill)
            yield from self._poll_flag(in_off + n, seq)
            buf.view()[:] = self.signals.view()[in_off:in_off + n]
        mask >>= 1
        view = self.signals.view()
        if mask > 0:
            yield from self._reap_line(out_off)
            view[out_off:out_off + n] = buf.view()
            view[out_off + n] = seq
        while mask > 0:
            if vr + mask < p:
                dest = (vr + mask + root) % p
                yield from self._post_from_line(dest, out_off, n + 1,
                                                in_off)
                # all forwards share the staging line; only the last
                # wr_id needs tracking (same-QP ordering is per-QP, so
                # track per QP: re-reap before each post)
                yield from self._reap_line(out_off)
                view[out_off:out_off + n] = buf.view()
                view[out_off + n] = seq
            mask >>= 1
        return None


_pending_qps: Dict[tuple, list] = {}
