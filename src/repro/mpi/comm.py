"""Communicators and point-to-point operations.

The API follows mpi4py's conventions where they fit the generator
world: lowercase methods (``send``/``recv``/``isend``) communicate
pickled Python objects; capitalized methods (``Send``/``Recv``) move
raw buffers (simulated Buffers, bytes, or numpy arrays).  All blocking
calls are generator coroutines used with ``yield from``.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import (Any, Deque, Generator, List, Optional,
                    Sequence, Tuple, Union)

import numpy as np

from ..hw.memory import Buffer
from ..mpich2.adi3 import (ANY_SOURCE, ANY_TAG, Adi3Device, MpiError,
                           Request, TruncateError)
from .datatypes import as_bytes, stage
from .status import Status

__all__ = ["Communicator", "MpiError", "TruncateError"]

Payload = Union[Buffer, bytes, bytearray, memoryview, np.ndarray]

#: context ids: world uses 0/1 (pt2pt/collective); each derived
#: communicator takes the next even/odd pair.
_CTX_STRIDE = 2


class _SelfMessage:
    __slots__ = ("tag", "context", "data")

    def __init__(self, tag: int, context: int, data: bytes):
        self.tag = tag
        self.context = context
        self.data = data


class Communicator:
    """An ordered group of ranks with an isolated context."""

    def __init__(self, mpi, device: Adi3Device, group: List[int],
                 context_id: int, ctx_counter: List[int]):
        self.mpi = mpi
        self.device = device
        #: world ranks of the members, indexed by communicator rank
        self.group = list(group)
        self.context_id = context_id
        # shared, deterministically advanced allocation counter
        self._ctx_counter = ctx_counter
        self._world_to_local = {w: i for i, w in enumerate(group)}
        if device.rank not in self._world_to_local:
            raise MpiError(f"rank {device.rank} not in communicator "
                           f"group {group}")
        self.rank = self._world_to_local[device.rank]
        self.size = len(group)
        #: messages this rank sent to itself, FIFO per (tag, context)
        self._self_q: Deque[_SelfMessage] = deque()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _world(self, rank: int) -> int:
        if not (0 <= rank < self.size):
            raise MpiError(f"rank {rank} out of range for communicator "
                           f"of size {self.size}")
        return self.group[rank]

    def _check_tag(self, tag: int, allow_any: bool = False) -> None:
        if tag == ANY_TAG and allow_any:
            return
        if tag < 0:
            raise MpiError(f"invalid tag {tag}")

    def _stage(self, data: Payload) -> Buffer:
        return stage(self.device.node.mem, data)

    # ------------------------------------------------------------------
    # buffer-mode point-to-point
    # ------------------------------------------------------------------
    def Isend(self, buf: Payload, dest: int, tag: int = 0
              ) -> Generator[None, None, Request]:
        self._check_tag(tag)
        yield from self._overhead()
        wdest = self._world(dest)
        sbuf = self._stage(buf)
        if wdest == self.device.rank:
            self._self_q.append(_SelfMessage(tag, self.context_id,
                                             sbuf.read()))
            req = Request("send")
            req.complete(count=len(sbuf))
            return req
        req = yield from self.device.isend([sbuf], wdest, tag,
                                           self.context_id)
        return req

    def Irecv(self, buf: Payload, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Generator[None, None, Request]:
        self._check_tag(tag, allow_any=True)
        yield from self._overhead()
        if not isinstance(buf, Buffer):
            raise MpiError("Irecv needs a simulated Buffer destination; "
                           "use recv()/Recv() with numpy or bytes")
        wsource = source if source == ANY_SOURCE else self._world(source)
        if wsource == self.device.rank:
            return self._self_recv(buf, tag)
        req = yield from self.device.irecv([buf], wsource, tag,
                                           self.context_id)
        return req

    def _self_recv(self, buf: Buffer, tag: int) -> Request:
        req = Request("recv")
        for i, m in enumerate(self._self_q):
            if m.context == self.context_id and tag in (m.tag, ANY_TAG):
                del self._self_q[i]
                if len(m.data) > len(buf):
                    req.fail(TruncateError(
                        f"self-message of {len(m.data)} bytes into "
                        f"{len(buf)}-byte receive"))
                    return req
                buf.write(np.frombuffer(m.data, dtype=np.uint8)) \
                    if m.data else None
                req.complete(self.rank, m.tag, len(m.data))
                return req
        req.fail(MpiError(
            "receive from self with no matching prior self-send "
            "(self-messages must be sent before they are received)"))
        return req

    def Send(self, buf: Payload, dest: int, tag: int = 0,
             datatype=None, count: int = 1) -> Generator:
        """Blocking send.  With a non-contiguous ``datatype``, the
        elements are packed into a contiguous staging buffer first
        (a real, charged copy — MPICH2's dataloop path)."""
        if datatype is not None and not datatype.is_contiguous:
            sbuf = self._stage(buf)
            node = self.device.node
            packed = node.alloc(datatype.size * count, "dt.pack")
            yield from datatype.pack(node.membus, node.mem, sbuf,
                                     count, packed)
            req = yield from self.Isend(packed, dest, tag)
            yield from self.device.wait(req)
            node.mem.free(packed.addr)
            return None
        req = yield from self.Isend(buf, dest, tag)
        yield from self.device.wait(req)
        return None

    def Recv(self, buf: Payload, source: int = ANY_SOURCE,
             tag: int = ANY_TAG, datatype=None,
             count: int = 1) -> Generator[None, None, Status]:
        if datatype is not None and not datatype.is_contiguous:
            if not isinstance(buf, Buffer):
                raise MpiError("typed Recv needs a Buffer destination")
            node = self.device.node
            packed = node.alloc(datatype.size * count, "dt.unpack")
            req = yield from self.Irecv(packed, source, tag)
            yield from self.device.wait(req)
            yield from datatype.unpack(node.membus, node.mem, packed,
                                       count, buf)
            node.mem.free(packed.addr)
            return Status(req.source, req.tag, req.count)
        if isinstance(buf, Buffer):
            target = buf
            copy_back = None
        elif isinstance(buf, np.ndarray):
            target = self._stage(np.zeros(buf.nbytes, dtype=np.uint8))
            copy_back = buf
        else:
            raise MpiError("Recv needs a Buffer or a writable ndarray")
        req = yield from self.Irecv(target, source, tag)
        yield from self.device.wait(req)
        if copy_back is not None:
            flat = copy_back.reshape(-1).view(np.uint8)
            flat[:req.count] = target.view()[:req.count]
        return Status(req.source, req.tag, req.count)

    def Sendrecv(self, sendbuf: Payload, dest: int, recvbuf: Payload,
                 source: int, sendtag: int = 0,
                 tag: int = ANY_TAG) -> Generator[None, None, Status]:
        sreq = yield from self.Isend(sendbuf, dest, sendtag)
        status = yield from self.Recv(recvbuf, source, tag)
        yield from self.device.wait(sreq)
        return status

    # ------------------------------------------------------------------
    # object-mode point-to-point (pickle)
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> Generator:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        yield from self.Send(data, dest, tag)
        return None

    def isend(self, obj: Any, dest: int, tag: int = 0
              ) -> Generator[None, None, Request]:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        req = yield from self.Isend(data, dest, tag)
        return req

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             max_size: int = 1 << 22) -> Generator:
        """Receive a pickled object; returns (obj, Status)."""
        buf = Buffer.alloc(self.device.node.mem, max_size, "recv.obj")
        try:
            req = yield from self.Irecv(buf, source, tag)
            yield from self.device.wait(req)
            obj = pickle.loads(buf.read()[:req.count])
            return obj, Status(req.source, req.tag, req.count)
        finally:
            self.device.node.mem.free(buf.addr)

    # ------------------------------------------------------------------
    # request completion
    # ------------------------------------------------------------------
    def Wait(self, req: Request) -> Generator[None, None, Status]:
        yield from self.device.wait(req)
        return Status(req.source if req.source is not None else ANY_SOURCE,
                      req.tag if req.tag is not None else ANY_TAG,
                      req.count)

    def Waitall(self, reqs: Sequence[Request]
                ) -> Generator[None, None, List[Status]]:
        out = []
        for req in reqs:
            st = yield from self.Wait(req)
            out.append(st)
        return out

    def Waitany(self, reqs: Sequence[Request]
                ) -> Generator[None, None, Tuple[int, Status]]:
        """Block until any request completes; returns (index, Status)."""
        if not reqs:
            raise MpiError("Waitany needs at least one request")
        while True:
            for i, req in enumerate(reqs):
                if req.done:
                    req.check()
                    return i, Status(
                        req.source if req.source is not None
                        else ANY_SOURCE,
                        req.tag if req.tag is not None else ANY_TAG,
                        req.count)
            yield from self.device.progress(block=True)

    def Waitsome(self, reqs: Sequence[Request]
                 ) -> Generator[None, None, List[int]]:
        """Block until at least one request completes; returns the
        indices of all completed requests."""
        if not reqs:
            return []
        while True:
            done = [i for i, r in enumerate(reqs) if r.done]
            if done:
                for i in done:
                    reqs[i].check()
                return done
            yield from self.device.progress(block=True)

    def Testall(self, reqs: Sequence[Request]) -> Generator:
        """One nonblocking progress poke; True if all are complete."""
        yield from self.device.progress(block=False)
        if all(r.done for r in reqs):
            for r in reqs:
                r.check()
            return True
        return False

    def Test(self, req: Request) -> Generator:
        """One nonblocking progress poke; returns (done, Status|None)."""
        if not req.done:
            yield from self.device.progress(block=False)
        if req.done:
            req.check()
            src = 0 if req.source is None else req.source
            tag = 0 if req.tag is None else req.tag
            return True, Status(src, tag, req.count)
        return False, None

    def Iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
               ) -> Generator:
        """Nonblocking probe; returns Status or None."""
        yield from self.device.progress(block=False)
        wsource = source if source == ANY_SOURCE else self._world(source)
        hit = self.device.iprobe(wsource, tag, self.context_id)
        if hit is None:
            return None
        src, t, count = hit
        return Status(self._world_to_local.get(src, src), t, count)

    def Probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
              ) -> Generator[None, None, Status]:
        while True:
            st = yield from self.Iprobe(source, tag)
            if st is not None:
                return st
            yield from self.device.progress(block=True)

    def _overhead(self) -> Generator:
        yield from self.device.channel.ctx.cpu.work(
            self.device.cfg.mpi_call_overhead)
        return None

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def _alloc_context(self) -> int:
        """Deterministic collective context allocation: every member
        advances the shared counter identically (all members execute
        the same communicator-management calls in the same order, as
        MPI requires)."""
        self._ctx_counter[0] += _CTX_STRIDE
        return self._ctx_counter[0]

    def Dup(self) -> Generator[None, None, "Communicator"]:
        cid = self._alloc_context()
        comm = Communicator(self.mpi, self.device, self.group, cid,
                            self._ctx_counter)
        yield from comm.Barrier()
        return comm

    def Split(self, color: int, key: int = 0
              ) -> Generator[None, None, Optional["Communicator"]]:
        from .collectives import allgather_obj
        cid = self._alloc_context()
        triples = yield from allgather_obj(self, (color, key, self.rank))
        if color is None or color < 0:
            return None
        members = sorted((k, r) for c, k, r in triples if c == color)
        group = [self.group[r] for _k, r in members]
        return Communicator(self.mpi, self.device, group, cid,
                            self._ctx_counter)

    # collectives are implemented in repro.mpi.collectives and bound
    # here for the natural comm.Bcast(...) style.
    def Barrier(self):
        from . import collectives
        return collectives.barrier(self)

    def Bcast(self, buf, root=0):
        from . import collectives
        return collectives.bcast(self, buf, root)

    def bcast(self, obj, root=0):
        from . import collectives
        return collectives.bcast_obj(self, obj, root)

    def Reduce(self, sendbuf, recvbuf, op=None, root=0, dtype=np.float64):
        from . import collectives
        from .datatypes import SUM
        return collectives.reduce(self, sendbuf, recvbuf, SUM if op is None else op,
                                  root, dtype)

    def Allreduce(self, sendbuf, recvbuf, op=None, dtype=np.float64):
        from . import collectives
        from .datatypes import SUM
        return collectives.allreduce(self, sendbuf, recvbuf, SUM if op is None else op,
                                     dtype)

    def allreduce(self, value, op=None):
        from . import collectives
        from .datatypes import SUM
        return collectives.allreduce_obj(self, value, SUM if op is None else op)

    def Gather(self, sendbuf, recvbuf, root=0):
        from . import collectives
        return collectives.gather(self, sendbuf, recvbuf, root)

    def gather(self, obj, root=0):
        from . import collectives
        return collectives.gather_obj(self, obj, root)

    def Scatter(self, sendbuf, recvbuf, root=0):
        from . import collectives
        return collectives.scatter(self, sendbuf, recvbuf, root)

    def Allgather(self, sendbuf, recvbuf):
        from . import collectives
        return collectives.allgather(self, sendbuf, recvbuf)

    def allgather(self, obj):
        from . import collectives
        return collectives.allgather_obj(self, obj)

    def Alltoall(self, sendbuf, recvbuf):
        from . import collectives
        return collectives.alltoall(self, sendbuf, recvbuf)

    def Scan(self, sendbuf, recvbuf, op=None, dtype=np.float64):
        from . import collectives
        from .datatypes import SUM
        return collectives.scan(self, sendbuf, recvbuf, SUM if op is None else op, dtype)

    def Reduce_scatter(self, sendbuf, recvbuf, op=None,
                       dtype=np.float64):
        from . import collectives
        from .datatypes import SUM
        return collectives.reduce_scatter(self, sendbuf, recvbuf,
                                          SUM if op is None else op, dtype)

    def Gatherv(self, sendbuf, recvbuf, counts, displs=None, root=0):
        from . import collectives
        return collectives.gatherv(self, sendbuf, recvbuf, counts,
                                   displs, root)

    def Scatterv(self, sendbuf, recvbuf, counts, displs=None, root=0):
        from . import collectives
        return collectives.scatterv(self, sendbuf, recvbuf, counts,
                                    displs, root)

    def Allgatherv(self, sendbuf, recvbuf, counts, displs=None):
        from . import collectives
        return collectives.allgatherv(self, sendbuf, recvbuf, counts,
                                      displs)

    def Alltoallv(self, sendbuf, recvbuf, send_counts, recv_counts,
                  send_displs=None, recv_displs=None):
        from . import collectives
        return collectives.alltoallv(self, sendbuf, recvbuf,
                                     send_counts, recv_counts,
                                     send_displs, recv_displs)

    def __repr__(self) -> str:
        return (f"<Communicator rank={self.rank}/{self.size} "
                f"ctx={self.context_id}>")
