"""MPI collective operations, implemented over point-to-point.

Algorithms are the classic MPICH ones: dissemination barrier, binomial
broadcast/reduce, recursive-doubling allreduce (with the power-of-two
fold-in for odd sizes), ring allgather, pairwise alltoall, and linear
gather/scatter/scan.  All collective traffic runs in the communicator's
*collective context* (``context_id + 1``), so it can never match user
point-to-point receives — the same separation MPICH2 enforces.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Generator, List, Optional, Tuple

import numpy as np

from ..hw.memory import Buffer
from ..mpich2.adi3 import MpiError
from .datatypes import Op, stage

__all__ = [
    "barrier", "bcast", "bcast_obj", "reduce", "allreduce",
    "allreduce_obj", "gather", "gather_obj", "scatter", "allgather",
    "allgather_obj", "alltoall", "scan", "reduce_scatter",
    "gatherv", "scatterv", "allgatherv", "alltoallv",
]

_BARRIER_TAG = 0x7F00
_COLL_TAG = 0x7F10


# ---------------------------------------------------------------------
# low-level helpers on the collective context
# ---------------------------------------------------------------------

def _isend(comm, buf: Buffer, dest: int, tag: int):
    wdest = comm.group[dest]
    req = yield from comm.device.isend([buf], wdest, tag,
                                       comm.context_id + 1)
    return req


def _recv(comm, buf: Buffer, source: int, tag: int):
    wsrc = comm.group[source]
    req = yield from comm.device.irecv([buf], wsrc, tag,
                                       comm.context_id + 1)
    yield from comm.device.wait(req)
    return req


def _sendrecv(comm, sbuf: Buffer, dest: int, rbuf: Buffer, source: int,
              tag: int):
    sreq = yield from _isend(comm, sbuf, dest, tag)
    yield from _recv(comm, rbuf, source, tag)
    yield from comm.device.wait(sreq)
    return None


def _send_obj(comm, obj: Any, dest: int, tag: int):
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    buf = stage(comm.device.node.mem, data, "coll.obj")
    req = yield from _isend(comm, buf, dest, tag)
    yield from comm.device.wait(req)
    return None


def _recv_obj(comm, source: int, tag: int, max_size: int = 1 << 22):
    buf = Buffer.alloc(comm.device.node.mem, max_size, "coll.objr")
    try:
        wsrc = comm.group[source]
        req = yield from comm.device.irecv([buf], wsrc, tag,
                                           comm.context_id + 1)
        yield from comm.device.wait(req)
        return pickle.loads(buf.read()[:req.count])
    finally:
        comm.device.node.mem.free(buf.addr)


def _as_target(comm, data) -> Tuple[Buffer, Optional[np.ndarray]]:
    """Stage ``data`` for in-place collective use; returns the staged
    buffer and, if the caller passed an ndarray, the array to copy the
    result back into."""
    if isinstance(data, Buffer):
        return data, None
    if isinstance(data, np.ndarray):
        return stage(comm.device.node.mem, data, "coll"), data
    raise MpiError("collective buffers must be Buffer or ndarray")


def _writeback(buf: Buffer, arr: Optional[np.ndarray]) -> None:
    if arr is not None:
        flat = arr.reshape(-1).view(np.uint8)
        flat[:] = buf.view()[:flat.size]


def _tmp(comm, nbytes: int) -> Buffer:
    return Buffer.alloc(comm.device.node.mem, max(nbytes, 1), "coll.tmp")


def _free(comm, buf: Buffer) -> None:
    comm.device.node.mem.free(buf.addr)


# ---------------------------------------------------------------------
# barrier — dissemination algorithm
# ---------------------------------------------------------------------

def barrier(comm) -> Generator:
    p, r = comm.size, comm.rank
    if p == 1:
        return None
    token = _tmp(comm, 1)
    inbox = _tmp(comm, 1)
    try:
        k = 0
        step = 1
        while step < p:
            dest = (r + step) % p
            src = (r - step) % p
            yield from _sendrecv(comm, token, dest, inbox, src,
                                 _BARRIER_TAG + k)
            step <<= 1
            k += 1
    finally:
        _free(comm, token)
        _free(comm, inbox)
    return None


# ---------------------------------------------------------------------
# broadcast — binomial tree
# ---------------------------------------------------------------------

def bcast(comm, data, root: int = 0) -> Generator:
    p, r = comm.size, comm.rank
    buf, arr = _as_target(comm, data)
    if p > 1:
        vr = (r - root) % p
        # receive phase: wait for the parent (first set bit of vr)
        mask = 1
        while mask < p and not (vr & mask):
            mask <<= 1
        if vr:
            src = (vr - mask + root) % p
            yield from _recv(comm, buf, src, _COLL_TAG)
        # forward phase: send to children at every lower bit position
        mask >>= 1
        while mask > 0:
            if vr + mask < p:
                dest = (vr + mask + root) % p
                req = yield from _isend(comm, buf, dest, _COLL_TAG)
                yield from comm.device.wait(req)
            mask >>= 1
    _writeback(buf, arr)
    return None


def bcast_obj(comm, obj: Any, root: int = 0) -> Generator:
    """Object-mode broadcast; returns the object on every rank."""
    p, r = comm.size, comm.rank
    if p == 1:
        return obj
    vr = (r - root) % p
    mask = 1
    while mask < p:
        if vr & mask:
            src = (vr - mask + root) % p
            obj = yield from _recv_obj(comm, src, _COLL_TAG + 1)
            break
        mask <<= 1
    mask >>= 1
    # highest zero-bit position reached: forward downwards
    mask = 1
    while mask < p and not (vr & mask):
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vr + mask < p:
            dest = (vr + mask + root) % p
            yield from _send_obj(comm, obj, dest, _COLL_TAG + 1)
        mask >>= 1
    return obj


# ---------------------------------------------------------------------
# reduce — binomial tree
# ---------------------------------------------------------------------

def reduce(comm, sendbuf, recvbuf, op: Op, root: int = 0,
           dtype=np.float64) -> Generator:
    p, r = comm.size, comm.rank
    dt = np.dtype(dtype)
    sbuf, _ = _as_target(comm, sendbuf)
    acc = np.array(sbuf.view().view(dt), copy=True)
    work = _tmp(comm, len(sbuf))
    tmp = _tmp(comm, len(sbuf))
    work.view()[:] = sbuf.view()
    try:
        vr = (r - root) % p
        mask = 1
        while mask < p:
            if vr & mask:
                dest = (vr - mask + root) % p
                work.view()[:] = acc.view(np.uint8)
                req = yield from _isend(comm, work, dest, _COLL_TAG + 2)
                yield from comm.device.wait(req)
                break
            partner = vr + mask
            if partner < p:
                src = (partner + root) % p
                yield from _recv(comm, tmp, src, _COLL_TAG + 2)
                acc = op.reduce_arrays(acc, tmp.view().view(dt))
            mask <<= 1
        if r == root:
            rbuf, arr = _as_target(comm, recvbuf)
            rbuf.view()[:] = acc.view(np.uint8)
            _writeback(rbuf, arr)
    finally:
        _free(comm, work)
        _free(comm, tmp)
    return None


# ---------------------------------------------------------------------
# allreduce — recursive doubling (power-of-two fold-in)
# ---------------------------------------------------------------------

def allreduce(comm, sendbuf, recvbuf, op: Op, dtype=np.float64
              ) -> Generator:
    p, r = comm.size, comm.rank
    dt = np.dtype(dtype)
    sbuf, _ = _as_target(comm, sendbuf)
    acc = np.array(sbuf.view().view(dt), copy=True)
    nbytes = len(sbuf)
    out = _tmp(comm, nbytes)
    inbox = _tmp(comm, nbytes)
    try:
        pof2 = 1
        while pof2 * 2 <= p:
            pof2 *= 2
        rem = p - pof2
        newrank = -1
        if r < 2 * rem:
            if r % 2 == 0:  # even: send to odd neighbour, drop out
                out.view()[:] = acc.view(np.uint8)
                req = yield from _isend(comm, out, r + 1, _COLL_TAG + 3)
                yield from comm.device.wait(req)
            else:           # odd: absorb the even neighbour
                yield from _recv(comm, inbox, r - 1, _COLL_TAG + 3)
                acc = op.reduce_arrays(acc, inbox.view().view(dt))
                newrank = r // 2
        else:
            newrank = r - rem
        if newrank != -1:
            mask = 1
            while mask < pof2:
                newdst = newrank ^ mask
                dst = newdst * 2 + 1 if newdst < rem else newdst + rem
                out.view()[:] = acc.view(np.uint8)
                yield from _sendrecv(comm, out, dst, inbox, dst,
                                     _COLL_TAG + 4)
                acc = op.reduce_arrays(acc, inbox.view().view(dt))
                mask <<= 1
        if r < 2 * rem:
            if r % 2:      # odd: send result back to the even neighbour
                out.view()[:] = acc.view(np.uint8)
                req = yield from _isend(comm, out, r - 1, _COLL_TAG + 5)
                yield from comm.device.wait(req)
            else:
                yield from _recv(comm, inbox, r + 1, _COLL_TAG + 5)
                acc = inbox.view().view(dt).copy()
        rbuf, arr = _as_target(comm, recvbuf)
        rbuf.view()[:] = acc.view(np.uint8)
        _writeback(rbuf, arr)
    finally:
        _free(comm, out)
        _free(comm, inbox)
    return None


def allreduce_obj(comm, value: Any, op: Op) -> Generator:
    """Object-mode allreduce (gather-to-0 + fold + broadcast)."""
    values = yield from gather_obj(comm, value, root=0)
    result = None
    if comm.rank == 0:
        result = values[0]
        for v in values[1:]:
            result = op(result, v)
    result = yield from bcast_obj(comm, result, root=0)
    return result


# ---------------------------------------------------------------------
# gather / scatter — linear
# ---------------------------------------------------------------------

def gather(comm, sendbuf, recvbuf, root: int = 0) -> Generator:
    p, r = comm.size, comm.rank
    sbuf, _ = _as_target(comm, sendbuf)
    n = len(sbuf)
    if r == root:
        rbuf, arr = _as_target(comm, recvbuf)
        if len(rbuf) < n * p:
            raise MpiError(f"gather needs {n * p} bytes at root, "
                           f"got {len(rbuf)}")
        rbuf.sub(r * n, n).view()[:] = sbuf.view()
        for src in range(p):
            if src == root:
                continue
            yield from _recv(comm, rbuf.sub(src * n, n), src,
                             _COLL_TAG + 6)
        _writeback(rbuf, arr)
    else:
        req = yield from _isend(comm, sbuf, root, _COLL_TAG + 6)
        yield from comm.device.wait(req)
    return None


def gather_obj(comm, obj: Any, root: int = 0) -> Generator:
    p, r = comm.size, comm.rank
    if r == root:
        out: List[Any] = [None] * p
        out[r] = obj
        for src in range(p):
            if src == root:
                continue
            out[src] = yield from _recv_obj(comm, src, _COLL_TAG + 7)
        return out
    yield from _send_obj(comm, obj, root, _COLL_TAG + 7)
    return None


def scatter(comm, sendbuf, recvbuf, root: int = 0) -> Generator:
    p, r = comm.size, comm.rank
    rbuf, arr = _as_target(comm, recvbuf)
    n = len(rbuf)
    if r == root:
        sbuf, _ = _as_target(comm, sendbuf)
        if len(sbuf) < n * p:
            raise MpiError(f"scatter needs {n * p} bytes at root")
        reqs = []
        for dst in range(p):
            if dst == root:
                rbuf.view()[:] = sbuf.sub(dst * n, n).view()
                continue
            req = yield from _isend(comm, sbuf.sub(dst * n, n), dst,
                                    _COLL_TAG + 8)
            reqs.append(req)
        for req in reqs:
            yield from comm.device.wait(req)
    else:
        yield from _recv(comm, rbuf, root, _COLL_TAG + 8)
    _writeback(rbuf, arr)
    return None


# ---------------------------------------------------------------------
# allgather — ring
# ---------------------------------------------------------------------

def allgather(comm, sendbuf, recvbuf) -> Generator:
    p, r = comm.size, comm.rank
    sbuf, _ = _as_target(comm, sendbuf)
    n = len(sbuf)
    rbuf, arr = _as_target(comm, recvbuf)
    if len(rbuf) < n * p:
        raise MpiError(f"allgather needs {n * p} bytes, got {len(rbuf)}")
    rbuf.sub(r * n, n).view()[:] = sbuf.view()
    right = (r + 1) % p
    left = (r - 1) % p
    for step in range(p - 1):
        send_block = (r - step) % p
        recv_block = (r - step - 1) % p
        yield from _sendrecv(comm, rbuf.sub(send_block * n, n), right,
                             rbuf.sub(recv_block * n, n), left,
                             _COLL_TAG + 9)
    _writeback(rbuf, arr)
    return None


def allgather_obj(comm, obj: Any) -> Generator:
    values = yield from gather_obj(comm, obj, root=0)
    values = yield from bcast_obj(comm, values, root=0)
    return values


# ---------------------------------------------------------------------
# alltoall — pairwise exchange
# ---------------------------------------------------------------------

def alltoall(comm, sendbuf, recvbuf) -> Generator:
    p, r = comm.size, comm.rank
    sbuf, _ = _as_target(comm, sendbuf)
    rbuf, arr = _as_target(comm, recvbuf)
    if len(sbuf) % p or len(rbuf) % p:
        raise MpiError("alltoall buffers must divide evenly by size")
    n = len(sbuf) // p
    rbuf.sub(r * n, n).view()[:] = sbuf.sub(r * n, n).view()
    for step in range(1, p):
        dst = (r + step) % p
        src = (r - step) % p
        yield from _sendrecv(comm, sbuf.sub(dst * n, n), dst,
                             rbuf.sub(src * n, n), src,
                             _COLL_TAG + 10)
    _writeback(rbuf, arr)
    return None


# ---------------------------------------------------------------------
# scan — linear prefix
# ---------------------------------------------------------------------

def scan(comm, sendbuf, recvbuf, op: Op, dtype=np.float64) -> Generator:
    p, r = comm.size, comm.rank
    dt = np.dtype(dtype)
    sbuf, _ = _as_target(comm, sendbuf)
    acc = np.array(sbuf.view().view(dt), copy=True)
    inbox = _tmp(comm, len(sbuf))
    out = _tmp(comm, len(sbuf))
    try:
        if r > 0:
            yield from _recv(comm, inbox, r - 1, _COLL_TAG + 11)
            acc = op.reduce_arrays(inbox.view().view(dt), acc)
        if r < p - 1:
            out.view()[:] = acc.view(np.uint8)
            req = yield from _isend(comm, out, r + 1, _COLL_TAG + 11)
            yield from comm.device.wait(req)
        rbuf, arr = _as_target(comm, recvbuf)
        rbuf.view()[:] = acc.view(np.uint8)
        _writeback(rbuf, arr)
    finally:
        _free(comm, inbox)
        _free(comm, out)
    return None


# ---------------------------------------------------------------------
# reduce_scatter — reduce + scatter
# ---------------------------------------------------------------------

def reduce_scatter(comm, sendbuf, recvbuf, op: Op, dtype=np.float64
                   ) -> Generator:
    p = comm.size
    sbuf, _ = _as_target(comm, sendbuf)
    rbuf, arr = _as_target(comm, recvbuf)
    if len(sbuf) != len(rbuf) * p:
        raise MpiError("reduce_scatter: sendbuf must be size*recvbuf")
    full = _tmp(comm, len(sbuf))
    try:
        yield from reduce(comm, sbuf, full, op, 0, dtype)
        yield from scatter(comm, full, rbuf, 0)
        _writeback(rbuf, arr)
    finally:
        _free(comm, full)
    return None


# ---------------------------------------------------------------------
# v-variants: per-rank counts and displacements (bytes)
# ---------------------------------------------------------------------

def _check_cd(comm, counts, displs, buf_len: int, what: str):
    if len(counts) != comm.size:
        raise MpiError(f"{what}: need one count per rank")
    if displs is None:
        displs, off = [], 0
        for c in counts:
            displs.append(off)
            off += c
    if len(displs) != comm.size:
        raise MpiError(f"{what}: need one displacement per rank")
    for c, d in zip(counts, displs):
        if c < 0 or d < 0 or d + c > buf_len:
            raise MpiError(
                f"{what}: segment [{d}, {d + c}) outside buffer of "
                f"{buf_len} bytes")
    return list(counts), list(displs)


def gatherv(comm, sendbuf, recvbuf, counts, displs=None,
            root: int = 0) -> Generator:
    """Gather variable-size contributions; ``counts``/``displs``
    describe the layout at the root (bytes)."""
    p, r = comm.size, comm.rank
    if len(counts) != p:
        raise MpiError("gatherv: need one count per rank")
    sbuf, _ = _as_target(comm, sendbuf)
    if len(sbuf) != counts[r]:
        raise MpiError(f"gatherv: rank {r} sends {len(sbuf)} bytes but "
                       f"counts[{r}]={counts[r]}")
    if r == root:
        rbuf, arr = _as_target(comm, recvbuf)
        counts, displs = _check_cd(comm, counts, displs, len(rbuf),
                                   "gatherv")
        if counts[r]:
            rbuf.sub(displs[r], counts[r]).view()[:] = sbuf.view()
        for src in range(p):
            if src == root or counts[src] == 0:
                continue
            yield from _recv(comm, rbuf.sub(displs[src], counts[src]),
                             src, _COLL_TAG + 12)
        _writeback(rbuf, arr)
    else:
        if counts[r]:
            req = yield from _isend(comm, sbuf, root, _COLL_TAG + 12)
            yield from comm.device.wait(req)
    return None


def scatterv(comm, sendbuf, recvbuf, counts, displs=None,
             root: int = 0) -> Generator:
    p, r = comm.size, comm.rank
    if len(counts) != p:
        raise MpiError("scatterv: need one count per rank")
    rbuf, arr = _as_target(comm, recvbuf)
    if len(rbuf) != counts[r]:
        raise MpiError(f"scatterv: rank {r} expects {counts[r]} bytes "
                       f"but the receive buffer has {len(rbuf)}")
    if r == root:
        sbuf, _ = _as_target(comm, sendbuf)
        counts, displs = _check_cd(comm, counts, displs, len(sbuf),
                                   "scatterv")
        reqs = []
        for dst in range(p):
            if counts[dst] == 0:
                continue
            seg = sbuf.sub(displs[dst], counts[dst])
            if dst == root:
                rbuf.view()[:] = seg.view()
                continue
            req = yield from _isend(comm, seg, dst, _COLL_TAG + 13)
            reqs.append(req)
        for req in reqs:
            yield from comm.device.wait(req)
    else:
        if counts[r]:
            yield from _recv(comm, rbuf, root, _COLL_TAG + 13)
    _writeback(rbuf, arr)
    return None


def allgatherv(comm, sendbuf, recvbuf, counts, displs=None
               ) -> Generator:
    """gatherv to rank 0 + bcast of the assembled buffer (simple and
    correct; a ring version is a natural optimization point)."""
    rbuf, arr = _as_target(comm, recvbuf)
    counts, displs = _check_cd(comm, counts, displs, len(rbuf),
                               "allgatherv")
    yield from gatherv(comm, sendbuf, rbuf, counts, displs, root=0)
    span_end = max(d + c for c, d in zip(counts, displs))
    yield from bcast(comm, rbuf.sub(0, span_end), root=0)
    _writeback(rbuf, arr)
    return None


def alltoallv(comm, sendbuf, recvbuf, send_counts, recv_counts,
              send_displs=None, recv_displs=None) -> Generator:
    """Pairwise exchange with per-peer counts (bytes)."""
    p, r = comm.size, comm.rank
    sbuf, _ = _as_target(comm, sendbuf)
    rbuf, arr = _as_target(comm, recvbuf)
    send_counts, send_displs = _check_cd(comm, send_counts, send_displs,
                                         len(sbuf), "alltoallv(send)")
    recv_counts, recv_displs = _check_cd(comm, recv_counts, recv_displs,
                                         len(rbuf), "alltoallv(recv)")
    if send_counts[r] != recv_counts[r]:
        raise MpiError("alltoallv: local segment size mismatch")
    if send_counts[r]:
        rbuf.sub(recv_displs[r], recv_counts[r]).view()[:] =             sbuf.sub(send_displs[r], send_counts[r]).view()
    for step in range(1, p):
        dst = (r + step) % p
        src = (r - step) % p
        sreq = None
        if send_counts[dst]:
            sreq = yield from _isend(
                comm, sbuf.sub(send_displs[dst], send_counts[dst]),
                dst, _COLL_TAG + 14)
        if recv_counts[src]:
            yield from _recv(
                comm, rbuf.sub(recv_displs[src], recv_counts[src]),
                src, _COLL_TAG + 14)
        if sreq is not None:
            yield from comm.device.wait(sreq)
    _writeback(rbuf, arr)
    return None
